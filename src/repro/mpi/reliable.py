"""Drop/duplicate-tolerant p2p: sequence numbers, acks, retries.

Plain :meth:`~repro.mpi.comm.Comm.send` is fire-and-forget: under a
:class:`~repro.faults.FaultPlan` a message may be dropped (never
delivered) or duplicated.  This module layers a stop-and-wait ARQ
protocol on top:

* :func:`reliable_send` stamps each payload with a per
  ``(sender, dest, tag)`` sequence number and blocks for the matching
  acknowledgement with a *virtual-time* deadline.  No ack in time →
  resend with exponential backoff per :class:`RetryPolicy`; still
  nothing after ``max_attempts`` → :class:`MessageTimeoutError`.
* :func:`reliable_recv` delivers the next in-order payload of one
  channel, acknowledging every arrival — acks for already-delivered
  sequence numbers are what terminate sender retries when it was the
  *ack* that got dropped — and deduplicating retransmissions and
  injected duplicates.

Data and acks share one wire tag (``RELIABLE_BASE + tag``), and — the
part that makes the protocol live — **every blocked reliable operation
services the whole channel**: a sender waiting for its ack still
receives, acknowledges, and buffers incoming data (delivered later, in
order, by ``reliable_recv``), and a receiver waiting for one peer still
acknowledges retransmissions from others.  Without this, a dropped ack
starves its sender: the receiver has moved on and would only re-ack at
its *next* receive on that channel, which may itself be blocked behind
the stuck sender.

Determinism of virtual time
---------------------------
Channel servicing is *causal*, not clocked: :func:`_dispatch` consumes
wire messages without advancing the servicing rank's clock, and each
message carries its own arrival time (departure + priced transfer).
Acks are stamped with the causal arrival of the data they acknowledge
(``send(..., _at=arrival)``) rather than the acking rank's current —
schedule-dependent — clock, and they draw their fault decisions from a
separate per-link stream, so their interleaving with ordinary sends
cannot perturb which data message the k-th drop lands on.  A rank's
clock advances only at *logical* consumption: ``reliable_recv`` merges
the stored arrival of the payload it delivers, ``reliable_send`` merges
the arrival of the ack that releases it.  Per-channel mailbox order is
FIFO, so those arrivals — and therefore the modelled makespan — are a
pure function of the fault plan's seed, independent of thread
scheduling.

Stop-and-wait keeps each ``(sender, dest, tag)`` channel in-order, so
higher layers (:class:`~repro.mpi.resilient.ResilientComm`) can multiplex
entire collectives over one channel tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..faults.detector import PhiAccrualDetector
from .comm import ANY_SOURCE, Comm
from .errors import CircuitOpenError, MessageTimeoutError
from .tags import NAMESPACE_WIDTH, RELIABLE_BASE

__all__ = ["RetryPolicy", "DEFAULT_POLICY", "ADAPTIVE_POLICY",
           "reliable_send", "reliable_recv", "service_pending"]

_DATA = "d"
_ACK = "a"

#: fault-decision stream of acknowledgement messages (see FaultPlan.link_event)
_ACK_STREAM = 1


@dataclass(frozen=True)
class RetryPolicy:
    """Retry schedule + degradation handling of :func:`reliable_send`.

    Attempt ``k`` (0-based) waits ``base_timeout * backoff**k`` virtual
    seconds for the ack before retransmitting; after ``max_attempts``
    unacknowledged sends the operation fails with
    :class:`MessageTimeoutError`.

    With ``adaptive=True`` the base of the ladder is no longer fixed:
    each link keeps a :class:`~repro.faults.PhiAccrualDetector` over the
    virtual arrival times of its acknowledgements and deliveries, and the
    first attempt's deadline becomes the silence duration at which the
    detector's suspicion reaches ``phi_threshold`` — clamped to
    ``[base_timeout, max_timeout]`` — so chronically slow links (delay
    spikes, degradation windows) earn proportionally longer patience
    while quiet fast links are given up on quickly.  Backoff still
    multiplies across attempts (per-link adaptive backoff).

    ``breaker_threshold`` arms a per-link circuit breaker: after that
    many *consecutive* reliable sends on one ``(dest, tag)`` channel
    exhausted their retry budget, further sends fail fast with
    :class:`CircuitOpenError` instead of paying another doomed ladder —
    the typed degradation signal recovery loops act on.  ``0`` disables
    the breaker.  Any acknowledged send closes the breaker again.
    """

    max_attempts: int = 8
    base_timeout: float = 1e-3
    backoff: float = 2.0
    adaptive: bool = False
    phi_threshold: float = 8.0
    max_timeout: float = 0.25
    breaker_threshold: int = 0
    window: int = 64

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_timeout <= 0.0:
            raise ValueError("base_timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if self.phi_threshold <= 0.0:
            raise ValueError("phi_threshold must be positive")
        if self.max_timeout < self.base_timeout:
            raise ValueError("max_timeout must be >= base_timeout")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be >= 0")
        if self.window < 2:
            raise ValueError("window must be >= 2")

    def timeout(self, attempt: int,
                detector: PhiAccrualDetector | None = None) -> float:
        """Ack deadline (virtual seconds) for 0-based ``attempt``.

        ``detector`` (the link's arrival history) adapts the base of the
        ladder when the policy is adaptive and at least two heartbeats
        have been seen; otherwise the fixed ``base_timeout`` applies.
        """
        base = self.base_timeout
        if self.adaptive and detector is not None and detector.observations >= 2:
            base = min(max(detector.deadline(self.phi_threshold), base),
                       self.max_timeout)
        return base * self.backoff**attempt


DEFAULT_POLICY = RetryPolicy()

#: the resilient layer's default: phi-accrual-adapted deadlines plus a
#: 3-strike circuit breaker (see :class:`repro.mpi.resilient.ResilientComm`)
ADAPTIVE_POLICY = RetryPolicy(adaptive=True, breaker_threshold=3)


def _link_detector(state, key: tuple[int, int, int]) -> PhiAccrualDetector:
    """The (own rank, peer, tag) link's arrival-history detector, created
    on first use.  Keys start with the owning rank, so no locking."""
    det = state.rel_detect.get(key)
    if det is None:
        det = state.rel_detect[key] = PhiAccrualDetector()
    return det


def _process(comm: Comm, msg, tag: int) -> None:
    """Process one received channel message (data or ack), clock-neutral.

    Data is acknowledged *unconditionally* — with the causal arrival time
    as the ack's departure — and, when new, buffered with that arrival for
    :func:`reliable_recv`; acks advance the per-peer high-water mark that
    :func:`reliable_send` polls.

    Deliberately does NOT feed the link's phi-accrual detector: *when* a
    pending message gets processed is a wall-clock scheduling accident,
    so an observation made here could be visible to one replay's deadline
    computation and not another's.  Heartbeats are observed at logical
    consumption instead (ack release in :func:`reliable_send`, in-order
    delivery in :func:`reliable_recv`), whose virtual arrival times are a
    pure function of the fault seed.
    """
    state = comm._state
    rank = comm.rank
    wire = RELIABLE_BASE + tag
    src = msg.src
    arrival = comm._arrival(msg)
    payload = msg.payload
    key = (rank, src, tag)
    if payload[0] == _ACK:
        seq = payload[1]
        cur = state.rel_acked.get(key)
        # Highest seq wins; for the same seq keep the EARLIEST arrival —
        # acks of one seq can arrive with different injected delays, and
        # physically the first one to arrive is the release, regardless
        # of the wall-clock order this rank happened to process them in.
        if cur is None or seq > cur[0] or \
                (seq == cur[0] and arrival < cur[1]):
            state.rel_acked[key] = (seq, arrival)
        return
    _, seq, obj = payload
    # Acks draw their fault decision from (comm, tag, seq, ack#) — an
    # identity, not a link counter — so a teardown race over whether this
    # very ack goes out cannot skew later decisions on the link (see
    # FaultPlan.link_event).  The communicator id matters: per-channel
    # state resets when recovery shrinks to a new communicator, and
    # without it a retry epoch would replay the exact ack fates that
    # doomed the previous one.
    kkey = (rank, src, tag, seq)
    # One ack per distinct data ARRIVAL: the copies of a duplicated
    # transmission share departure and arrival, and acking each copy
    # would mint acks with independent fates whose race for the sender's
    # release slot depends on processing order.  A retransmission has a
    # new arrival and still draws a fresh ack (and fate) — that is what
    # keeps the retry ladder live when an earlier ack was dropped.
    acked_arrivals = state.rel_ack_sent.setdefault(kkey, [])
    if arrival in acked_arrivals:
        if comm.tracer.enabled:
            comm.tracer.instant("dedup-ack", src=src, tag=tag, seq=seq)
        return
    acked_arrivals.append(arrival)
    k = state.rel_ackseq.get(kkey, 0)
    state.rel_ackseq[kkey] = k + 1
    comm.send((_ACK, seq), src, wire, _at=arrival, _stream=_ACK_STREAM,
              _event=(state.trace_id, tag, seq, k), _control="arq")
    if seq > state.rel_delivered.get(key, -1):
        state.rel_delivered[key] = seq
        state.rel_buf.setdefault(key, []).append((obj, arrival))
    elif comm.tracer.enabled:
        comm.tracer.instant("dedup", src=src, tag=tag, seq=seq)


def deferred(comm: Comm, m) -> bool:
    """Must this reliable wire message wait for the rank's clock?

    True for *data* whose virtual arrival lies beyond the servicing
    rank's current clock while that rank still has a planned crash ahead
    of it.  Acking such a message would assert the rank was alive at the
    arrival instant — but whether the thread schedule lets it do so
    before reaching its crash op is a wall-clock accident, and the crash
    cut (ack iff ``arrival <= crash clock``, :func:`crash_drain`) must be
    a pure function of the virtual schedule.  Deferred messages simply
    stay in the mailbox: if the rank lives on, a later drain at a higher
    clock picks them up; if it dies first, the crash drain applies the
    cut.  Acks are never deferred — they only advance the rank's own
    release bookkeeping, which dies with it.
    """
    if m.payload[0] == _ACK:
        return False
    rt = comm._rt
    wr = comm.world_rank
    if not rt.crash_pending(wr):
        return False
    return comm._arrival(m) > float(rt.clocks[wr])


def _dispatch(
    comm: Comm, tag: int, timeout: float | None, fail_source: int | None,
    recv_from: int | None = None,
) -> None:
    """Blocking-receive and process one channel message.

    ``fail_source`` is the rank whose death should fail the wait (the
    channel peer the caller is really blocked on); ``recv_from`` names
    the channel :func:`reliable_recv` is actively delivering from, whose
    next in-order data message is always visible — consuming it merges
    the arrival into the rank's clock, so the crash cut stays consistent
    without deferral.  Raises :class:`MessageTimeoutError` when nothing
    arrives before the virtual deadline.
    """
    wire = RELIABLE_BASE + tag
    visible = None
    if comm._rt.crash_pending(comm.world_rank):
        state = comm._state
        key = (comm.rank, recv_from, tag)

        def visible(m):
            if recv_from is not None and m.src == recv_from and \
                    m.payload[0] == _DATA and \
                    m.payload[1] == state.rel_delivered.get(key, -1) + 1:
                return True
            return not deferred(comm, m)

    msg = comm._recv_message(ANY_SOURCE, wire, timeout=timeout,
                             fail_source=fail_source,
                             span_name="reliable_wait", visible=visible)
    _process(comm, msg, tag)


def service_pending(comm: Comm, exclude: tuple[int, int] | None = None) -> int:
    """Drain every reliable wire message already sitting in this rank's
    mailbox and process it; returns how many were handled.

    Non-blocking and clock-neutral.  Called by ft rendezvous waits
    (``agree``/``shrink``) so a rank that has moved past its last channel
    operation still acknowledges peers' retransmissions — without this, a
    peer whose epoch-final ack was dropped could never complete.  Also
    called at reliable-op exits and from blocked receive waits so a
    serviceable message is never stranded behind a wall-clock race (see
    ``Comm._recv_wait``).  ``exclude`` is a ``(source, tag)`` receive
    pattern (``-1`` wildcards) whose matches are left in place — a wait
    must never consume its own quarry on behalf of the channel layer.
    Data the servicing rank may not ack yet (see :func:`deferred`) is
    likewise left in place, for a later drain or the crash cut.
    """
    state = comm._state
    mb = state.mailboxes[comm.rank]
    chk = comm._rt.checker
    got = []
    with mb.cond:
        if state.aborted:
            return 0
        kept = []
        for m in mb.messages:
            if RELIABLE_BASE <= m.tag < RELIABLE_BASE + NAMESPACE_WIDTH \
                    and not (exclude is not None
                             and (exclude[0] < 0 or m.src == exclude[0])
                             and (exclude[1] < 0 or m.tag == exclude[1])) \
                    and not deferred(comm, m):
                got.append(m)
            else:
                kept.append(m)
        if got:
            mb.messages[:] = kept
            if chk is not None:
                for m in got:
                    chk.note_consume(state, comm.rank, m.src, m.tag)
    for m in got:
        _process(comm, m, m.tag - RELIABLE_BASE)
    return len(got)


def crash_drain(comm: Comm, now: float) -> int:
    """Final channel service of a dying rank (its own thread, from
    ``Runtime._execute_crash``): process every reliable wire message
    whose virtual **arrival** precedes the crash instant ``now``, so the
    acks those messages earned go out with their causal timestamps.

    Whether the rank's thread happened to service a message before
    reaching its crash op is a wall-clock scheduling accident; this cut
    — ack iff ``arrival <= crash clock`` — makes the dead rank's last
    acknowledgements a pure function of the virtual schedule.  Messages
    arriving after the cut die with the rank (left in the dead mailbox).
    The caller holds the rank's post-mortem lock, which also serializes
    senders that deposit after the drain (``Comm._post_mortem``).
    """
    state = comm._state
    mb = state.mailboxes[comm.rank]
    chk = comm._rt.checker
    got = []
    with mb.cond:
        if state.aborted:
            return 0
        kept = []
        for m in mb.messages:
            if RELIABLE_BASE <= m.tag < RELIABLE_BASE + NAMESPACE_WIDTH \
                    and comm._arrival(m) <= now:
                got.append(m)
            else:
                kept.append(m)
        if got:
            mb.messages[:] = kept
            if chk is not None:
                for m in got:
                    chk.note_consume(state, comm.rank, m.src, m.tag)
    for m in got:
        _process(comm, m, m.tag - RELIABLE_BASE)
    return len(got)


def reliable_send(
    comm: Comm,
    obj: Any,
    dest: int,
    tag: int = 0,
    policy: RetryPolicy = DEFAULT_POLICY,
    *,
    control: str | None = None,
) -> int:
    """Send ``obj`` to ``dest`` surviving drops and duplications.

    Blocks until the matching ack (the clock merges the ack's causal
    arrival time, like a rendezvous send).  Returns the number of
    transmission attempts used (1 = no retry).  Raises
    :class:`MessageTimeoutError` when every attempt went unacknowledged,
    :class:`CircuitOpenError` immediately when the link's breaker is
    already open, and propagates :class:`RankFailedError` /
    :class:`CommRevokedError` from the underlying waits.

    ``control`` names a control-plane traffic kind (e.g. ``"checkpoint"``,
    ``"heartbeat"``) accounted via :meth:`Stats.record_control` instead of
    the data-plane byte counters; retransmissions are always accounted as
    control traffic (their kind, or ``"arq"`` for data-plane payloads),
    so ``wire_bytes`` reflects the payload once regardless of retries.
    """
    state = comm._state
    rt = comm._rt
    akey = (comm.rank, dest, tag)
    if policy.breaker_threshold:
        if state.rel_breaker.get(akey, 0) >= policy.breaker_threshold:
            raise CircuitOpenError(
                f"reliable_send(dest={dest}, tag={tag}): circuit open after "
                f"{state.rel_breaker[akey]} consecutive exhausted sends"
            )
    seq = state.rel_seq.get(akey, 0)
    state.rel_seq[akey] = seq + 1
    wire = RELIABLE_BASE + tag
    tracer = comm.tracer
    detector = state.rel_detect.get(akey) if policy.adaptive else None

    def acked() -> tuple[int, float] | None:
        cur = state.rel_acked.get(akey)
        return cur if cur is not None and cur[0] >= seq else None

    for attempt in range(policy.max_attempts):
        t0 = comm.clock
        kind = control if attempt == 0 else (control or "arq")
        comm.send((_DATA, seq, obj), dest, wire, _control=kind)
        try:
            while acked() is None:
                _dispatch(comm, tag, policy.timeout(attempt, detector), dest)
            ack_at = acked()[1]
            comm.clock = max(comm.clock, ack_at)
            # Heartbeat at the deterministic point: the op completed, and
            # the releasing ack's causal arrival is seed-pure (see the
            # module docs) — unlike the wall-clock-raced moment _process
            # happened to handle it.
            _link_detector(state, akey).observe(ack_at)
            if policy.breaker_threshold:
                state.rel_breaker[akey] = 0
            # Never exit a channel op with unprocessed channel traffic in
            # the mailbox: the dispatch loop consumes in deposit order, and
            # whether a peer's duplicate landed before or after our own ack
            # is a thread-scheduling race.  Leaving it stranded delays its
            # (causally timed) ack until this rank's next channel op, which
            # can let the peer's virtual deadline fire in one replay and
            # not another.  Draining here is clock-neutral and keeps every
            # ack's departure at its deterministic causal time.
            service_pending(comm)
            return attempt + 1
        except MessageTimeoutError:
            if attempt + 1 >= policy.max_attempts:
                if policy.breaker_threshold:
                    strikes = state.rel_breaker.get(akey, 0) + 1
                    state.rel_breaker[akey] = strikes
                    if strikes == policy.breaker_threshold:
                        rt._count_fault("breaker_trips")
                raise MessageTimeoutError(
                    f"reliable_send(dest={dest}, tag={tag}, seq={seq}) gave "
                    f"up after {policy.max_attempts} attempts"
                ) from None
            if tracer.enabled:
                tracer.record("retry", t0, cat="fault", dest=dest, tag=tag,
                              seq=seq, attempt=attempt + 1)
    raise AssertionError("unreachable")


def reliable_recv(
    comm: Comm,
    source: int,
    tag: int = 0,
    *,
    timeout: float | None = None,
) -> Any:
    """Receive the next in-order reliable message from ``source``.

    ``source`` must be a concrete rank: ordering and deduplication state
    is per channel.  ``timeout`` bounds each internal wait in virtual
    seconds (:class:`MessageTimeoutError` on expiry).
    """
    if source < 0:
        raise ValueError("reliable_recv requires a concrete source rank")
    rt = comm._rt
    if rt._faults is not None:
        # Channel servicing (_dispatch) is not a crash checkpoint, so the
        # op count a crash triggers on stays schedule-independent; check
        # once per logical receive instead.
        rt.maybe_crash(comm.world_rank)
    state = comm._state
    key = (comm.rank, source, tag)
    tracer = comm.tracer
    t0 = comm.clock
    while True:
        buf = state.rel_buf.get(key)
        if buf:
            obj, arrival = buf.pop(0)
            comm.clock = max(comm.clock, arrival)
            # In-order delivery is the receive-side heartbeat (same
            # determinism argument as the ack heartbeat in reliable_send).
            _link_detector(state, key).observe(arrival)
            if tracer.enabled:
                tracer.record("reliable_recv", t0, cat="p2p", src=source,
                              tag=tag, idle=max(0.0, comm.clock - t0))
            # Same stranding guard as reliable_send's success exit: drain
            # channel traffic before leaving, so pending duplicates get
            # their causally-timed acks out regardless of deposit order.
            service_pending(comm)
            return obj
        _dispatch(comm, tag, timeout, source, recv_from=source)
