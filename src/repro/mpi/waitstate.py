"""Always-on wait registry + virtual-time timeout arbiter.

Every rank thread registers what it is blocked on (a receive, a barrier
phase of a collective, or a fault-tolerant rendezvous).  Two consumers:

* ``Runtime.run(timeout=...)`` expiry reports *which ranks* were blocked
  and on what operation (:meth:`WaitRegistry.describe_blocked`).
* Virtual-time p2p deadlines (``recv(timeout=...)``): there is no global
  event queue in this runtime — ranks run as free threads — so a timeout
  cannot "fire at virtual time T" eagerly.  Instead the registry detects
  *quiescence* (no rank is runnable and no blocked wait can make
  progress) and only then fires the earliest ``(deadline, rank)``
  timeout.  That is exactly the point where the virtual clocks can no
  longer advance on their own, so firing is deterministic: quiescent
  configurations are determined by the program + fault schedule, not by
  thread scheduling.

Lock discipline: the registry lock is a leaf for condition variables —
wait predicates (``can_progress``) only *read* mailbox lists and barrier
state, which are stable at quiescence; notifications and aborts happen
after the registry lock is released, and callers never invoke
``block_*`` while holding a mailbox condition.
"""

from __future__ import annotations

import threading
from typing import Callable

RUNNING, BLOCKED, FINISHED, DEAD = range(4)

_STATE_NAMES = {RUNNING: "running", BLOCKED: "blocked",
                FINISHED: "finished", DEAD: "dead"}


class WaitInfo:
    """One rank's current wait."""

    __slots__ = ("rank", "kind", "detail", "deadline", "fired", "awake",
                 "hoisted", "can_progress", "notify", "revocable")

    def __init__(self, rank: int, kind: str, detail: str,
                 deadline: float | None = None,
                 can_progress: Callable[[], bool] | None = None,
                 notify: Callable[[], None] | None = None,
                 revocable: Callable[[], bool] | None = None):
        self.rank = rank
        self.kind = kind
        self.detail = detail
        self.deadline = deadline
        self.fired = False
        #: the waiter's thread woke and is re-checking its predicate — it
        #: may be about to consume the very message the predicate sees, so
        #: the arbiter must treat it as in-flight progress (non-monotone
        #: recv predicates only; barrier/ft predicates are monotone)
        self.awake = False
        #: the arbiter decided this wait must abandon with a revocation
        #: error (quiescence reached, nothing can progress, comm revoked)
        self.hoisted = False
        self.can_progress = can_progress
        self.notify = notify
        self.revocable = revocable


class WaitRegistry:
    def __init__(self, size: int):
        self.size = size
        self._lock = threading.Lock()
        self._state = [RUNNING] * size
        self._waits: list[WaitInfo | None] = [None] * size
        self._nrunning = size
        # barrier arrival counters (keyed per barrier object) so the
        # arbiter can tell "release in flight" from "stuck waiting"
        self._arrivals: dict[int, int] = {}
        self._faults_active = False
        self._on_deadlock: Callable[[str], None] | None = None
        self._on_fire: Callable[[WaitInfo], None] | None = None

    def begin(self, *, faults_active: bool,
              on_deadlock: Callable[[str], None] | None = None,
              on_fire: Callable[[WaitInfo], None] | None = None) -> None:
        """Reset for a fresh run.  ``on_fire`` observes every fired
        virtual deadline (the failure detector's *suspicion* events —
        quiescence-determined, hence deterministic; used for counting)."""
        with self._lock:
            self._state = [RUNNING] * self.size
            self._waits = [None] * self.size
            self._nrunning = self.size
            self._arrivals.clear()
            self._faults_active = faults_active
            self._on_deadlock = on_deadlock
            self._on_fire = on_fire

    # -- transitions -----------------------------------------------------

    def block(self, rank: int, kind: str, detail: str, *,
              deadline: float | None = None,
              can_progress: Callable[[], bool] | None = None,
              notify: Callable[[], None] | None = None,
              revocable: Callable[[], bool] | None = None) -> WaitInfo:
        """Mark ``rank`` blocked.  Must NOT be called while holding any
        mailbox condition (the arbiter's follow-up actions may notify
        arbitrary conditions or abort the runtime)."""
        w = WaitInfo(rank, kind, detail, deadline, can_progress, notify,
                     revocable)
        with self._lock:
            if self._state[rank] == RUNNING:
                self._nrunning -= 1
            self._state[rank] = BLOCKED
            self._waits[rank] = w
            action = self._arbitrate_locked()
        self._perform(action)
        return w

    def block_barrier(self, rank: int, barrier: threading.Barrier,
                      detail: str) -> WaitInfo:
        """Mark ``rank`` blocked on (and arrived at) a barrier phase."""
        key = id(barrier)
        with self._lock:
            n = self._arrivals.get(key, 0)
            self._arrivals[key] = n + 1
            parties = barrier.parties
            gen = n // parties
            arrivals = self._arrivals

            def arrived() -> bool:
                return barrier.broken or arrivals.get(key, 0) >= (gen + 1) * parties

            w = WaitInfo(rank, "collective", detail, can_progress=arrived)
            if self._state[rank] == RUNNING:
                self._nrunning -= 1
            self._state[rank] = BLOCKED
            self._waits[rank] = w
            action = self._arbitrate_locked()
        self._perform(action)
        return w

    def unblock(self, rank: int) -> None:
        with self._lock:
            if self._state[rank] == BLOCKED:
                self._nrunning += 1
                self._state[rank] = RUNNING
            self._waits[rank] = None

    def wake_ack(self, rank: int) -> None:
        """The waiter's thread resumed after a wake-up (registry lock is a
        leaf, so this is safe to call while holding the waited condition)."""
        with self._lock:
            w = self._waits[rank]
            if w is not None:
                w.awake = True

    def rearm(self, rank: int) -> None:
        """The waiter re-checked its predicate and is about to wait again."""
        with self._lock:
            w = self._waits[rank]
            if w is not None:
                w.awake = False

    def repoll(self, rank: int) -> None:
        """The waiter finished wake-up work that consumed progress invisibly
        (e.g. an ft-blocked rank drained protocol traffic from its mailbox
        without leaving the BLOCKED state) and is about to wait again.
        Unlike :meth:`rearm` this re-runs arbitration: the drain may have
        removed the last pending wake, leaving a deadline as the only way
        forward.  Must not be called while holding a mailbox or ft
        condition (the arbiter's follow-up may notify arbitrary ones)."""
        with self._lock:
            w = self._waits[rank]
            if w is not None:
                w.awake = False
            action = self._arbitrate_locked()
        self._perform(action)

    def finish(self, rank: int) -> None:
        with self._lock:
            if self._state[rank] == RUNNING:
                self._nrunning -= 1
            if self._state[rank] != DEAD:
                self._state[rank] = FINISHED
            self._waits[rank] = None
            action = self._arbitrate_locked()
        self._perform(action)

    def die(self, rank: int) -> None:
        """Mark a rank dead (fault-injected crash).  Call *after* all
        death bookkeeping (failed sets, barrier aborts, notifications) so
        the arbiter sees a consistent picture."""
        with self._lock:
            if self._state[rank] == RUNNING:
                self._nrunning -= 1
            self._state[rank] = DEAD
            self._waits[rank] = None
            action = self._arbitrate_locked()
        self._perform(action)

    # -- arbiter ---------------------------------------------------------

    def _arbitrate_locked(self):
        if self._nrunning > 0:
            return None
        blocked = [w for w in self._waits if w is not None]
        if not blocked:
            return None
        for w in blocked:
            if w.fired or w.awake or w.hoisted:
                return None  # a firing or a wake-up is already in flight
            try:
                if w.can_progress is not None and w.can_progress():
                    return None
            except Exception:
                return None  # predicate raced with a wake-up: assume progress
        with_deadline = [w for w in blocked if w.deadline is not None]
        if with_deadline:
            w = min(with_deadline, key=lambda w: (w.deadline, w.rank))
            w.fired = True
            return ("fire", w)
        # No deadline left to drive progress: waits on a revoked
        # communicator abandon with CommRevokedError.  Deciding this only
        # here — at quiescence, where the revoked flag and every mailbox
        # are stable — rather than eagerly on wake-up keeps the schedule a
        # pure function of virtual time: a blocked receive whose message
        # is still (causally) coming always completes; revocation hoists
        # only the traffic that can never be satisfied.
        hoist = [w for w in blocked
                 if w.revocable is not None and w.revocable()]
        if hoist:
            for w in hoist:
                w.hoisted = True
            return ("hoist", hoist)
        if self._faults_active and self._on_deadlock is not None:
            return ("deadlock", self._describe_locked())
        return None

    def _perform(self, action) -> None:
        if action is None:
            return
        what, payload = action
        if what == "fire":
            cb = self._on_fire
            if cb is not None:
                cb(payload)
            if payload.notify is not None:
                payload.notify()
        elif what == "hoist":
            for w in payload:
                if w.notify is not None:
                    w.notify()
        elif what == "deadlock":
            cb = self._on_deadlock
            if cb is not None:
                cb(payload)

    # -- introspection ---------------------------------------------------

    def has_pending_deadline(self) -> bool:
        """True if any blocked wait carries a virtual-time deadline (the
        deadlock verdict then belongs to the timeout arbiter, not the
        checker)."""
        with self._lock:
            return any(w is not None and w.deadline is not None
                       for w in self._waits)

    def _describe_locked(self) -> str:
        lines = []
        for r in range(self.size):
            st = self._state[r]
            w = self._waits[r]
            if w is not None:
                extra = ""
                if w.deadline is not None:
                    extra = f" (deadline t={w.deadline:.6g})"
                lines.append(f"  rank {r}: blocked in {w.detail}{extra}")
            else:
                lines.append(f"  rank {r}: {_STATE_NAMES[st]}")
        return "\n".join(lines)

    def describe_blocked(self) -> str:
        """Human-readable per-rank wait table (for run-timeout reports)."""
        with self._lock:
            return self._describe_locked()
