"""Reduction operations for the runtime's reduce/allreduce/scan collectives.

Operations work uniformly on Python scalars, tuples (elementwise), and NumPy
arrays.  Each :class:`ReduceOp` is a binary, associative combiner; the
runtime folds contributions in rank order, so non-commutative user ops are
well defined (as in MPI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np


def _elementwise(fn: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    def combine(a: Any, b: Any) -> Any:
        if isinstance(a, tuple) and isinstance(b, tuple):
            if len(a) != len(b):
                raise ValueError("tuple operands of different length")
            return tuple(combine(x, y) for x, y in zip(a, b))
        return fn(a, b)

    return combine


@dataclass(frozen=True)
class ReduceOp:
    """A named associative reduction."""

    name: str
    fn: Callable[[Any, Any], Any]

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReduceOp({self.name})"


SUM = ReduceOp("sum", _elementwise(lambda a, b: np.add(a, b) if isinstance(a, np.ndarray) else a + b))
PROD = ReduceOp("prod", _elementwise(lambda a, b: np.multiply(a, b) if isinstance(a, np.ndarray) else a * b))
MIN = ReduceOp("min", _elementwise(lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)))
MAX = ReduceOp("max", _elementwise(lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)))
LAND = ReduceOp("land", _elementwise(lambda a, b: np.logical_and(a, b) if isinstance(a, np.ndarray) else bool(a) and bool(b)))
LOR = ReduceOp("lor", _elementwise(lambda a, b: np.logical_or(a, b) if isinstance(a, np.ndarray) else bool(a) or bool(b)))

#: (value, location) pairs — reduce keeps the smaller value, ties to lower loc
MINLOC = ReduceOp("minloc", lambda a, b: a if (a[0], a[1]) <= (b[0], b[1]) else b)
MAXLOC = ReduceOp("maxloc", lambda a, b: a if (a[0], -a[1]) >= (b[0], -b[1]) else b)

__all__ = ["ReduceOp", "SUM", "PROD", "MIN", "MAX", "LAND", "LOR", "MINLOC", "MAXLOC"]
