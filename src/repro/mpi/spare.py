"""Spare-rank pool: warm substitutes and the recovery rendezvous.

ULFM's shrink-and-restart recovery changes the rank count, which
invalidates capacity-tuned plans and shifts every partition boundary.
The spare pool keeps ``p`` constant instead: ``run_spmd(..., spares=k)``
spawns ``k`` extra ranks that sit out the sort in a **pool rendezvous**
— a fault-tolerant collective on the *world* state (all actives and
spares) — and are substituted, one per crashed active, when a recovery
epoch needs a replacement.  Shrinking remains the fallback once the
pool is exhausted.

The protocol is one :meth:`~repro.mpi.comm._CommState.ft_collective`
per epoch exit:

* every live **active** deposits its epoch outcome — position, the
  membership it ran on, its verified/failed verdict, its phase-progress
  marker, the buddy replica it holds, and bookkeeping (origins carried,
  cumulative losses, the continuation for substitutes to run);
* every idle **spare** deposits a ready marker;
* the combine (:func:`_pool_combine`, pure bookkeeping — it never
  communicates) diagnoses the epoch: all verified and nobody dead →
  ``done``; attempts exhausted → ``exhausted``; otherwise it builds a
  ``recover`` verdict — a fresh communicator state with spares
  substituted into the crashed positions (or the survivors only, once
  spares run out), the phase to resume from (the minimum marker over
  the new membership), which buddy restores which partition, and what
  was irrecoverably lost.

Every live world rank makes exactly one pool call per epoch exit, so
the rendezvous generations stay congruent: a spare's Nth call meets the
actives' Nth epoch verdict.  Deposits from ranks that later crash are
ignored via the rendezvous' ``live`` membership, and the combine folds
in deterministic (sorted) order, so verdicts are a pure function of the
program and the fault plan's seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .checkpoint import PH_SORTED, PH_SPLIT, PH_START
from .comm import Comm, _CommState

__all__ = ["PoolVerdict", "pool_round", "spare_main"]


@dataclass(frozen=True)
class PoolVerdict:
    """Outcome of one pool rendezvous (identical on every live rank)."""

    #: "done" | "recover" | "exhausted" | "dead"
    kind: str
    #: epoch attempts completed so far
    epoch: int = 0
    #: cumulative initial positions whose data is irrecoverably lost
    lost: tuple[int, ...] = ()
    #: cumulative spares consumed
    spares_used: int = 0
    # --- recover-only fields -------------------------------------------
    state: "_CommState | None" = None
    positions: tuple[int, ...] = ()
    #: spare world rank -> its new group rank
    assigned: dict[int, int] = field(default_factory=dict)
    resume_marker: int = PH_START
    #: agreed splitters when resuming at PH_SPLIT (opaque to this layer)
    splitters: Any = None
    #: (holder new rank, target new rank) replica transfers, target order
    restores: tuple[tuple[int, int], ...] = ()
    #: new ranks that must fold their held replica into their own input
    #: (shrink fallback: the dropped owner's data survives at its buddy)
    salvages: tuple[int, ...] = ()
    #: new group rank -> initial positions whose data it carries
    origin_map: dict[int, tuple[int, ...]] = field(default_factory=dict)
    shrunk: bool = False
    #: epoch-loop continuation substitutes run (from the active deposits)
    cont: Callable[..., Any] | None = None
    #: opaque driver context (config, capacities, ...) for substitutes
    meta: Any = None


def _pool_combine(rt, values: list, order: list[int], live: list[int]):
    """Fold one generation of pool deposits into a :class:`PoolVerdict`.

    Runs once per generation on whichever thread completes the
    rendezvous; everything it reads is a deposit or the (stable at this
    point) failed set, and all iteration is in sorted order, so the
    verdict is schedule-independent.  On the world state, deposit index
    equals world rank.
    """
    live_set = set(live)
    actives: dict[int, tuple[int, dict]] = {}
    spare_pool: list[int] = []
    for idx, v in zip(order, values):
        if idx not in live_set:
            continue  # deposited, then crashed before the epoch ended
        if v[0] == "active":
            actives[v[1]["pos"]] = (idx, v[1])
        else:
            spare_pool.append(idx)
    if not actives:
        return PoolVerdict(kind="dead")
    ref = actives[min(actives)][1]
    positions = list(ref["positions"])
    p = len(positions)
    epoch = int(ref["epoch"])
    origin_map: dict[int, tuple[int, ...]] = dict(ref["origin_map"])
    lost = set()
    for _, d in actives.values():
        lost.update(d["lost"])
    spares_used = int(ref["spares_used"])

    failed = [i for i in range(p) if i not in actives]
    all_ok = not failed and all(d["ok"] for _, d in actives.values())
    if all_ok:
        return PoolVerdict(kind="done", epoch=epoch,
                           lost=tuple(sorted(lost)), spares_used=spares_used)
    if epoch >= int(ref["max_epochs"]):
        return PoolVerdict(kind="exhausted", epoch=epoch,
                           lost=tuple(sorted(lost)), spares_used=spares_used)

    rt._count_fault("recoveries")
    # Live survivors whose restore never completed carry no data; they are
    # re-restored (their buddy still holds the replica) rather than failed.
    # A rank whose origins are *known lost* (empty origin_map entry) is not
    # dataless — it legitimately runs with an empty partition.
    dataless = [i for i in sorted(actives)
                if not actives[i][1]["origins"] and origin_map.get(i)
                and i not in failed]
    # owner position -> (holder position, replica marker) at live holders
    held: dict[int, tuple[int, int]] = {}
    for pos in sorted(actives):
        h = actives[pos][1]["held"]
        if h is not None:
            held[h[0]] = (pos, h[1])

    spare_pool.sort()
    substituted: dict[int, int] = {}
    assigned_old: dict[int, int] = {}
    for i in failed:
        if not spare_pool:
            break
        wr = spare_pool.pop(0)
        substituted[i] = wr
        assigned_old[wr] = i
        rt._count_fault("spares_used")
    spares_used += len(substituted)
    dropped = [i for i in failed if i not in substituted]

    keep = [i for i in range(p) if i not in dropped]
    new_pos_of = {i: ni for ni, i in enumerate(keep)}
    new_positions = [substituted.get(i, positions[i]) for i in keep]
    shrunk = len(keep) != p

    restores: list[tuple[int, int]] = []
    new_origin_map: dict[int, tuple[int, ...]] = {}
    markers: dict[int, int] = {}
    newly_lost: set[int] = set()
    for i in keep:
        ni = new_pos_of[i]
        if i in substituted or i in dataless:
            h = held.get(i)
            if h is not None and h[0] in new_pos_of:
                restores.append((new_pos_of[h[0]], ni))
                markers[i] = h[1]
                new_origin_map[ni] = tuple(origin_map.get(i, ()))
            else:
                markers[i] = PH_START
                new_origin_map[ni] = ()
                newly_lost.update(origin_map.get(i, ()))
        else:
            markers[i] = int(actives[i][1]["marker"])
            new_origin_map[ni] = tuple(actives[i][1]["origins"])

    salvages: list[int] = []
    for i in dropped:
        h = held.get(i)
        if h is not None and h[0] in new_pos_of:
            ni = new_pos_of[h[0]]
            salvages.append(ni)
            merged = set(new_origin_map[ni]) | set(origin_map.get(i, ()))
            new_origin_map[ni] = tuple(sorted(merged))
        else:
            newly_lost.update(origin_map.get(i, ()))
    for _ in newly_lost - lost:
        rt._count_fault("lost")
    lost |= newly_lost

    if shrunk:
        # The rank count changed: splitters, packed keys, and capacity
        # targets are all invalid — the epoch restarts from scratch.
        resume = PH_START
        splitters = None
    else:
        resume = min(markers[i] for i in keep)
        splitters = None
        if resume >= PH_SPLIT:
            for pos in sorted(actives):
                s = actives[pos][1]["splitters"]
                if s is not None:
                    splitters = s
                    break
            if splitters is None:  # pragma: no cover - defensive
                resume = PH_SORTED

    new_state = _CommState(rt, new_positions)
    return PoolVerdict(
        kind="recover",
        epoch=epoch,
        lost=tuple(sorted(lost)),
        spares_used=spares_used,
        state=new_state,
        positions=tuple(new_positions),
        assigned={wr: new_pos_of[i] for wr, i in assigned_old.items()},
        resume_marker=resume,
        splitters=splitters,
        restores=tuple(sorted(restores, key=lambda r: r[1])),
        salvages=tuple(sorted(salvages)),
        origin_map=new_origin_map,
        shrunk=shrunk,
        cont=ref["cont"],
        meta=ref["meta"],
    )


def pool_round(rt, world_rank: int, deposit: tuple,
               service_comm: Comm) -> PoolVerdict:
    """One pool rendezvous call (collective over every live world rank).

    ``service_comm`` is the communicator whose reliable channels must
    stay serviced while blocked (the work communicator for actives, the
    world handle for spares) — see :meth:`_CommState.ft_collective`.
    """
    state = rt.world_state

    def combine(values, order, live):
        return _pool_combine(rt, values, order, live)

    def cost_fn(live_world):
        return rt.cost.allreduce(64, live_world)

    return state.ft_collective(world_rank, deposit, combine, cost_fn,
                               "spare_pool", comm=service_comm)


def spare_main(rt, world_rank: int) -> Any:
    """Main loop of a spare rank: wait in the pool until substituted.

    Returns ``None`` when the sort finishes (or dies) without needing
    this spare; otherwise runs the actives' deposited continuation as
    the substitute and returns its result.
    """
    wc = Comm(rt.world_state, world_rank)
    while True:
        verdict = pool_round(rt, world_rank, ("spare",), wc)
        if verdict.kind != "recover":
            return None
        pos = verdict.assigned.get(world_rank)
        if pos is not None:
            assert verdict.cont is not None
            return verdict.cont(rt, wc, verdict, pos)
