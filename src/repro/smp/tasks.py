"""A deterministic shared-memory task scheduler simulator.

Models a single node as a set of hardware threads pinned to NUMA domains
executing a task DAG under greedy work stealing: when a thread goes idle it
takes a ready task, preferring tasks whose data lives in its own NUMA
domain.  A task executed away from its data pays the domain-to-domain
access penalty.  Virtual time only — this is the substitute for running
Intel TBB / OpenMP runtimes natively, and it is what prices the Fig. 4
merge-sort baselines.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["Task", "ScheduleResult", "WorkStealingSimulator"]


@dataclass
class Task:
    """One schedulable unit.

    ``cost`` is the execution time in seconds on a thread local to the
    task's data; ``numa`` the domain holding (most of) the task's data;
    ``deps`` indices of tasks that must finish first.
    """

    cost: float
    numa: int = 0
    deps: tuple[int, ...] = ()
    tag: str = ""

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError("task cost must be >= 0")


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of a simulated schedule."""

    makespan: float
    busy_time: tuple[float, ...]       #: per-thread busy seconds
    finish_times: tuple[float, ...]    #: per-task completion times
    remote_executions: int             #: tasks run off their home domain

    @property
    def utilization(self) -> float:
        total = self.makespan * len(self.busy_time)
        return sum(self.busy_time) / total if total > 0 else 1.0


class WorkStealingSimulator:
    """Greedy locality-aware list scheduler over a task DAG.

    Parameters
    ----------
    thread_numa:
        NUMA domain of each hardware thread (length = thread count).
    penalty:
        ``penalty(data_domain, exec_domain)`` — multiplicative cost factor,
        1.0 for local access.
    spawn_overhead:
        Fixed scheduling overhead added to every task (tasking runtime cost).
    throughput:
        Per-thread throughput factor (e.g. < 1 with two SMT threads/core).
    """

    def __init__(
        self,
        thread_numa: Sequence[int],
        penalty: Callable[[int, int], float],
        spawn_overhead: float = 1.0e-6,
        throughput: float = 1.0,
    ):
        self.thread_numa = list(thread_numa)
        if not self.thread_numa:
            raise ValueError("need at least one thread")
        self.penalty = penalty
        self.spawn_overhead = spawn_overhead
        if throughput <= 0:
            raise ValueError("throughput must be > 0")
        self.throughput = throughput

    def run(self, tasks: Sequence[Task]) -> ScheduleResult:
        """Simulate the DAG; returns makespan and per-thread statistics."""
        n = len(tasks)
        if n == 0:
            return ScheduleResult(0.0, tuple(0.0 for _ in self.thread_numa), (), 0)
        children: list[list[int]] = [[] for _ in range(n)]
        missing = [0] * n
        for tid, task in enumerate(tasks):
            missing[tid] = len(task.deps)
            for d in task.deps:
                if not 0 <= d < n:
                    raise ValueError(f"task {tid} depends on unknown task {d}")
                children[d].append(tid)

        ready: list[int] = [tid for tid in range(n) if missing[tid] == 0]
        if not ready:
            raise ValueError("task DAG has no source (cycle?)")
        idle: list[int] = list(range(len(self.thread_numa)))
        in_flight: list[tuple[float, int, int]] = []  # (finish, thread, task)
        finish = [0.0] * n
        busy = [0.0] * len(self.thread_numa)
        remote = 0
        clock = 0.0
        done = 0

        def pick(thread: int) -> int:
            """Index into ``ready`` preferred by ``thread`` (own domain first)."""
            dom = self.thread_numa[thread]
            for pos, tid in enumerate(ready):
                if tasks[tid].numa == dom:
                    return pos
            return 0

        while done < n:
            while ready and idle:
                thread = idle.pop(0)
                tid = ready.pop(pick(thread))
                factor = self.penalty(tasks[tid].numa, self.thread_numa[thread])
                if factor < 1.0:
                    raise ValueError("penalty factors must be >= 1.0")
                if tasks[tid].numa != self.thread_numa[thread]:
                    remote += 1
                dur = self.spawn_overhead + tasks[tid].cost * factor / self.throughput
                busy[thread] += dur
                heapq.heappush(in_flight, (clock + dur, thread, tid))
            if not in_flight:
                raise ValueError("deadlocked DAG: tasks remain but none ready")
            t, thread, tid = heapq.heappop(in_flight)
            clock = t
            finish[tid] = t
            done += 1
            idle.append(thread)
            idle.sort()
            for child in children[tid]:
                missing[child] -= 1
                if missing[child] == 0:
                    ready.append(child)

        return ScheduleResult(
            makespan=clock,
            busy_time=tuple(busy),
            finish_times=tuple(finish),
            remote_executions=remote,
        )
