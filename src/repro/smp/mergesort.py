"""Task-DAG models of the paper's shared-memory merge sorts (§VI-D, §VI-E.2).

Two runtimes are modelled on top of :class:`WorkStealingSimulator`:

* ``tbb`` — Intel Parallel STL's TBB task merge sort: fine grain
  (≈ 4 leaves per thread), *parallelized* top-level merges (TBB's parallel
  merge splits a big merge into concurrent range sub-merges), low spawn
  overhead, locality-aware stealing;
* ``openmp`` — the Intel OpenMP task merge sort reference: coarser grain,
  sequential binary merges, higher per-task overhead.

Both pay NUMA penalties when a task executes away from its data or merges
a remote sibling — the mechanism behind Fig. 4's crossover: a merge sort
touches every element ``log`` times (increasingly across domains), while
the histogram sort moves each element across domains exactly once.

:func:`kway_merge_time` additionally models the §VI-E.2 study: merging
``k`` equal chunks with ``t`` threads under the three strategies, with a
cache-pressure penalty once the merge fan-in's working set exceeds L2 —
reproducing "many threads merging many small chunks degrades".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..machine.spec import Level as _Level
from ..machine.spec import MachineSpec
from .numa import NumaModel
from .tasks import ScheduleResult, Task, WorkStealingSimulator

_NODE_LEVEL = _Level.NODE

__all__ = ["SmpRun", "parallel_mergesort_time", "kway_merge_time"]

#: L2 cache per core (Haswell: 256 KiB) — fan-in cache model of §VI-E.2
_L2_BYTES = 256 * 1024
#: per-run streaming working set of one merge input (a few cache pages)
_RUN_FOOTPRINT = 16 * 1024
#: cache-miss penalty slope once the fan-in working set spills L2
_CACHE_SLOPE = 1.6

#: SMT settings: the paper found 2 threads/core beneficial for TBB/OpenMP
_SMT_THROUGHPUT = {1: 1.0, 2: 0.62}


@dataclass(frozen=True)
class SmpRun:
    """A modelled shared-memory run."""

    seconds: float
    schedule: ScheduleResult
    tasks: int


def _leaf_count(nthreads: int, per_thread: int) -> int:
    leaves = 1
    while leaves < nthreads * per_thread:
        leaves *= 2
    return leaves


def parallel_mergesort_time(
    machine: MachineSpec,
    n: int,
    *,
    cores: int,
    active_domains: int,
    runtime: str = "tbb",
    smt: int = 2,
    itemsize: int = 8,
) -> SmpRun:
    """Modelled time of a task-parallel merge sort of ``n`` keys.

    ``cores`` physical cores spread over ``active_domains`` NUMA domains
    (the Fig. 4 sweep runs 7..28 cores over 1..4 domains); data is evenly
    first-touch-distributed over the active domains.
    """
    if runtime not in ("tbb", "openmp"):
        raise ValueError(f"unknown runtime {runtime!r}")
    if n <= 0:
        raise ValueError("n must be > 0")
    numa = NumaModel(machine, active_domains)
    nthreads = cores * smt
    thread_domains = numa.thread_domains(nthreads, smt=smt)
    compute = machine.compute

    if runtime == "tbb":
        leaves = _leaf_count(nthreads, per_thread=4)
        spawn = 8.0e-7
        parallel_merge = True
    else:
        leaves = _leaf_count(nthreads, per_thread=2)
        spawn = 2.5e-6
        parallel_merge = False

    leaf_n = n / leaves
    tasks: list[Task] = []
    # Leaves: local sorts on first-touch-placed blocks.  A leaf's domain set
    # is a single domain; merges track the set of domains their subtree's
    # data is spread over, because once a merge has combined two domains'
    # data, every later pass over it is partially remote.
    level_nodes: list[tuple[int, int, float, frozenset[int]]] = []
    cross_bytes = 0.0  # total bytes moved across NUMA domains by merges
    for i in range(leaves):
        dom = numa.domain_of_block(i, leaves)
        tasks.append(Task(cost=compute.sort(int(leaf_n), itemsize), numa=dom, tag="sort"))
        level_nodes.append((len(tasks) - 1, dom, leaf_n, frozenset((dom,))))

    # Merge levels.
    while len(level_nodes) > 1:
        nxt: list[tuple[int, int, float, frozenset[int]]] = []
        for j in range(0, len(level_nodes), 2):
            (lt, ldom, ln, lspan), (rt, rdom, rn, rspan) = (
                level_nodes[j],
                level_nodes[j + 1],
            )
            total = ln + rn
            home = ldom
            span = lspan | rspan
            # An s-domain subtree is (1 - 1/s) remote for any single core.
            s = len(span)
            remote_frac = 1.0 - 1.0 / s
            cross_pen = numa.penalty(0, numa.active_domains - 1) if numa.active_domains > 1 else 1.0
            base = compute.c_merge * total * (1.0 + remote_frac * (cross_pen - 1.0))
            cross_bytes += total * itemsize * remote_frac * 2.0  # read + write
            if parallel_merge and total > 4 * leaf_n:
                # TBB parallel merge: split into concurrent range sub-merges.
                pieces = max(2, int(total // (2 * leaf_n)))
                sub_ids = []
                for piece in range(pieces):
                    tasks.append(
                        Task(cost=base / pieces, numa=home, deps=(lt, rt), tag="merge")
                    )
                    sub_ids.append(len(tasks) - 1)
                tasks.append(Task(cost=0.0, numa=home, deps=tuple(sub_ids), tag="join"))
                nxt.append((len(tasks) - 1, home, total, span))
            else:
                tasks.append(Task(cost=base, numa=home, deps=(lt, rt), tag="merge"))
                nxt.append((len(tasks) - 1, home, total, span))
        level_nodes = nxt

    sim = WorkStealingSimulator(
        thread_domains,
        numa.penalty,
        spawn_overhead=spawn,
        throughput=_SMT_THROUGHPUT.get(smt, 1.0),
    )
    result = sim.run(tasks)
    # Cross-domain merge traffic shares the inter-socket links: a bandwidth
    # floor no amount of threads removes (the NUMA wall of §VI-D).
    cross_bw = machine.link(_NODE_LEVEL).bandwidth * 2.0
    seconds = result.makespan + cross_bytes / cross_bw
    return SmpRun(seconds=seconds, schedule=result, tasks=len(tasks))


def _cache_penalty(k: int) -> float:
    """Fan-in cache pressure: k streaming runs must coexist in L2."""
    working = k * _RUN_FOOTPRINT
    if working <= _L2_BYTES:
        return 1.0
    return 1.0 + _CACHE_SLOPE * math.log2(working / _L2_BYTES)


def kway_merge_time(
    machine: MachineSpec,
    n: int,
    k: int,
    *,
    threads: int,
    strategy: str,
    active_domains: int = 4,
    smt: int = 1,
    itemsize: int = 4,
) -> SmpRun:
    """Modelled time of merging ``k`` equal sorted chunks of total size ``n``.

    Strategies (§VI-E.2): ``binary_tree`` (OpenMP-task binary merge tree),
    ``tournament`` (GNU parallel multiway merge: output split over threads,
    each thread runs a k-way loser tree), ``sort`` (ignore run structure,
    parallel-merge-sort everything — the baseline that wins for many small
    chunks).
    """
    if k < 1 or n <= 0:
        raise ValueError("need k >= 1 and n > 0")
    numa = NumaModel(machine, active_domains)
    compute = machine.compute
    if strategy == "sort":
        return parallel_mergesort_time(
            machine, n, cores=threads, active_domains=active_domains, runtime="tbb", smt=smt
        )

    thread_domains = numa.thread_domains(threads * smt, smt=smt)
    sim = WorkStealingSimulator(
        thread_domains,
        numa.penalty,
        spawn_overhead=1.5e-6,
        throughput=_SMT_THROUGHPUT.get(smt, 1.0),
    )

    chunk_n = n / k
    tasks: list[Task] = []
    if strategy == "binary_tree":
        # ceil(log2 k) passes of pairwise merges; pass p merges runs of
        # 2^p chunks.  Two-run merges stream well: no fan-in penalty.
        level = [
            (None, numa.domain_of_block(i, k), chunk_n) for i in range(k)
        ]  # (tid, dom, size); leaves are data, not tasks
        ids: list[int | None] = [None] * k
        nodes = list(range(k))
        sizes = [chunk_n] * k
        doms = [numa.domain_of_block(i, k) for i in range(k)]
        while len(nodes) > 1:
            nxt_nodes, nxt_sizes, nxt_doms, nxt_ids = [], [], [], []
            for j in range(0, len(nodes) - 1, 2):
                total = sizes[j] + sizes[j + 1]
                home = doms[j]
                cost = compute.c_merge * (
                    sizes[j] * numa.penalty(doms[j], home)
                    + sizes[j + 1] * numa.penalty(doms[j + 1], home)
                )
                deps = tuple(t for t in (ids[j], ids[j + 1]) if t is not None)
                tasks.append(Task(cost=cost, numa=home, deps=deps, tag="merge"))
                nxt_nodes.append(len(nxt_nodes))
                nxt_sizes.append(total)
                nxt_doms.append(home)
                nxt_ids.append(len(tasks) - 1)
            if len(nodes) % 2:
                nxt_nodes.append(len(nxt_nodes))
                nxt_sizes.append(sizes[-1])
                nxt_doms.append(doms[-1])
                nxt_ids.append(ids[-1])
            nodes, sizes, doms, ids = nxt_nodes, nxt_sizes, nxt_doms, nxt_ids
        if not tasks:
            tasks.append(Task(cost=compute.memcpy(n * 4), numa=0, tag="copy"))
    elif strategy == "tournament":
        # Output range split across threads; each slice runs a k-way loser
        # tree over all k runs — log2(k) comparisons and k-way fan-in cache
        # pressure per element.
        slices = max(threads, 1)
        per = n / slices
        fan = _cache_penalty(k)
        for s in range(slices):
            dom = numa.domain_of_block(s, slices)
            cost = compute.c_merge * per * max(1.0, math.log2(max(k, 2))) * fan
            tasks.append(Task(cost=cost, numa=dom, tag="kway"))
    else:
        raise ValueError(f"unknown strategy {strategy!r}")

    result = sim.run(tasks)
    # Merging is memory-bound: every pass streams the full volume through
    # the memory system, which the paper's §VI-E.2 experiments hit as soon
    # as many threads process many chunks.  Threads beyond the bandwidth
    # wall do not help — the floor is thread-independent.
    if strategy == "binary_tree":
        passes = max(1, math.ceil(math.log2(max(k, 2))))
        stream_bytes = passes * n * itemsize * 2.0
        fan = 1.0
    else:  # tournament
        stream_bytes = n * itemsize * 2.0
        fan = _cache_penalty(k)
    # Concurrency contention: many threads issuing merge streams defeat the
    # prefetchers and row-buffer locality, shrinking effective bandwidth.
    mem_bw = machine.link(_Level.NUMA).bandwidth * active_domains
    mem_bw /= 1.0 + 0.02 * threads
    floor = stream_bytes * fan / mem_bw
    return SmpRun(seconds=max(result.makespan, floor), schedule=result, tasks=len(tasks))
