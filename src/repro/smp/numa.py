"""NUMA node model: thread pinning and access penalties.

Derived from a :class:`repro.machine.spec.MachineSpec` node: the penalty of
touching another domain's memory is the bandwidth ratio of the local NUMA
link to the link that traffic crosses (same socket vs. QPI).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.spec import Level, MachineSpec

__all__ = ["NumaModel"]


@dataclass(frozen=True)
class NumaModel:
    """Access-penalty and pinning helper for one node of ``machine``."""

    machine: MachineSpec
    active_domains: int

    def __post_init__(self) -> None:
        node = self.machine.node
        if not 1 <= self.active_domains <= node.numa_domains:
            raise ValueError(
                f"active_domains must be in [1, {node.numa_domains}]"
            )

    def socket_of_domain(self, domain: int) -> int:
        return domain // self.machine.node.numa_per_socket

    def penalty(self, data_domain: int, exec_domain: int) -> float:
        """Multiplicative slow-down of touching remote memory."""
        if data_domain == exec_domain:
            return 1.0
        local_bw = self.machine.link(Level.NUMA).bandwidth
        if self.socket_of_domain(data_domain) == self.socket_of_domain(exec_domain):
            return max(1.0, local_bw / self.machine.link(Level.SOCKET).bandwidth)
        return max(1.0, local_bw / self.machine.link(Level.NODE).bandwidth)

    def thread_domains(self, nthreads: int, smt: int = 1) -> list[int]:
        """Domains of ``nthreads`` hardware threads filling active domains.

        Cores fill domain by domain (``numactl`` style); with ``smt`` > 1
        each core contributes that many hardware threads.
        """
        cores_per_domain = self.machine.node.cores_per_numa
        slots = []
        for dom in range(self.active_domains):
            slots.extend([dom] * (cores_per_domain * smt))
        if nthreads > len(slots):
            raise ValueError(
                f"{nthreads} threads exceed {len(slots)} hardware threads on "
                f"{self.active_domains} domain(s)"
            )
        return slots[:nthreads]

    def domain_of_block(self, block: int, nblocks: int) -> int:
        """First-touch placement: block ``i`` of the data lives in the domain
        owning that slice of the (evenly interleaved) allocation."""
        if nblocks <= 0:
            raise ValueError("nblocks must be > 0")
        return min(
            self.active_domains - 1,
            (block * self.active_domains) // nblocks,
        )
