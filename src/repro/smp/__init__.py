"""Shared-memory node simulator: task scheduling, NUMA penalties, merge sorts."""

from .mergesort import SmpRun, kway_merge_time, parallel_mergesort_time
from .numa import NumaModel
from .tasks import ScheduleResult, Task, WorkStealingSimulator

__all__ = [
    "NumaModel",
    "ScheduleResult",
    "SmpRun",
    "Task",
    "WorkStealingSimulator",
    "kway_merge_time",
    "parallel_mergesort_time",
]
