"""Binary-search histogram helpers on locally sorted runs (§V-A).

The local histogram of a probe vector ``S`` over a sorted partition ``p`` is
the pair of bound vectors

* ``l[i]`` — number of local keys strictly below ``S[i]``,
* ``u[i]`` — number of local keys at or below ``S[i]``,

obtained with two vectorised ``np.searchsorted`` calls.  Summed over all
ranks these become the global histogram ``(L, U)`` of Algorithm 3.
"""

from __future__ import annotations

import numpy as np

__all__ = ["local_histogram", "rank_of", "counts_between"]


def local_histogram(sorted_part: np.ndarray, probes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Lower/upper bound counts of each probe in a sorted partition."""
    sorted_part = np.asarray(sorted_part)
    probes = np.asarray(probes)
    lower = np.searchsorted(sorted_part, probes, side="left").astype(np.int64)
    upper = np.searchsorted(sorted_part, probes, side="right").astype(np.int64)
    return lower, upper


def rank_of(sorted_part: np.ndarray, value) -> tuple[int, int]:
    """``(strictly-below, at-or-below)`` counts of one value."""
    lo, up = local_histogram(sorted_part, np.asarray([value]))
    return int(lo[0]), int(up[0])


def counts_between(sorted_part: np.ndarray, lo, hi) -> int:
    """Number of keys in the open interval ``(lo, hi)``."""
    sorted_part = np.asarray(sorted_part)
    a = np.searchsorted(sorted_part, lo, side="right")
    b = np.searchsorted(sorted_part, hi, side="left")
    return int(max(0, b - a))
