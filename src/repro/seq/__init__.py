"""Sequential building blocks: selection, weighted median, search, k-way merge."""

from .checks import (
    balance_violation,
    check_sorted_output,
    is_globally_sorted,
    is_permutation,
    is_sorted,
)
from .kmerge import (
    LoserTree,
    binary_merge_tree,
    kway_merge,
    loser_tree_merge,
    merge_two_sorted,
)
from .search import counts_between, local_histogram, rank_of
from .select import floyd_rivest, median_of_medians, nsmallest_value, quickselect
from .wmedian import is_weighted_median, weighted_median

__all__ = [
    "LoserTree",
    "balance_violation",
    "binary_merge_tree",
    "check_sorted_output",
    "counts_between",
    "floyd_rivest",
    "is_globally_sorted",
    "is_permutation",
    "is_sorted",
    "is_weighted_median",
    "kway_merge",
    "local_histogram",
    "loser_tree_merge",
    "median_of_medians",
    "merge_two_sorted",
    "nsmallest_value",
    "quickselect",
    "rank_of",
    "weighted_median",
]
