"""K-way merging of sorted runs (§V-C of the paper).

The paper weighs three ways of combining the ``P`` sorted chunks a rank
receives from the exchange:

* re-sorting the concatenation (what the evaluated implementation does),
* a **binary merge tree** — pairwise two-way merges, ``ceil(log2 P)`` passes,
* a **tournament (loser) tree** — one pass, ``O(log P)`` per element.

All three are provided here; :func:`repro.core.merge.local_merge` picks one
by configuration, and ``benchmarks/bench_merge_strategies.py`` reproduces
the §VI-E.2 study of their trade-offs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "merge_two_sorted",
    "binary_merge_tree",
    "LoserTree",
    "loser_tree_merge",
    "kway_merge",
]


def merge_two_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Stable two-way merge of sorted arrays, fully vectorised.

    Elements of ``b`` are placed after equal elements of ``a`` (stability).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size == 0:
        return b.copy()
    if b.size == 0:
        return a.copy()
    # Final index of each b-element: its insertion point in a, shifted by
    # the number of b-elements before it.
    pos_b = np.searchsorted(a, b, side="right") + np.arange(b.size)
    out = np.empty(a.size + b.size, dtype=np.result_type(a, b))
    mask = np.zeros(out.size, dtype=bool)
    mask[pos_b] = True
    out[pos_b] = b
    out[~mask] = a
    return out


def binary_merge_tree(runs: Sequence[np.ndarray]) -> np.ndarray:
    """Merge ``k`` sorted runs with ceil(log2 k) pairwise passes.

    Each element is touched once per pass; pairs can merge as soon as both
    inputs are available, which is what makes this strategy overlap well
    with an incoming all-to-all (§VI-E.1).
    """
    runs = [np.asarray(r) for r in runs if np.asarray(r).size > 0]
    if not runs:
        return np.empty(0)
    while len(runs) > 1:
        nxt = [
            merge_two_sorted(runs[i], runs[i + 1])
            for i in range(0, len(runs) - 1, 2)
        ]
        if len(runs) % 2:
            nxt.append(runs[-1])
        runs = nxt
    return runs[0]


class LoserTree:
    """A tournament (loser) tree over ``k`` sorted runs.

    Classic Knuth-style replacement-selection structure: internal nodes hold
    the *loser* of the match below them, the overall winner sits at the
    root.  ``pop()`` returns the globally smallest head and replays the
    winner's path in ``O(log k)`` comparisons.
    """

    def __init__(self, runs: Sequence[np.ndarray]):
        real = [np.asarray(r) for r in runs]
        if not real:
            raise ValueError("LoserTree needs at least one run")
        # Pad the run count to a power of two with empty (always-losing)
        # runs so the tree is perfect: leaf j sits at node k + j, the
        # parent of node i is i // 2, internal nodes 1..k-1 store losers.
        k = 1
        while k < len(real):
            k *= 2
        empty = np.empty(0, dtype=real[0].dtype)
        self._runs = real + [empty] * (k - len(real))
        self._pos = [0] * k
        self._k = k
        self._remaining = sum(r.size for r in real)
        # cached current head per run (None = exhausted); avoids a numpy
        # scalar extraction on every comparison of every path replay
        self._heads = [r[0] if r.size else None for r in self._runs]
        self._tree = [-1] * k  # internal nodes: run index of the loser
        winner_at = [-1] * (2 * k)
        for j in range(k):
            winner_at[k + j] = j
        for node in range(k - 1, 0, -1):
            a, b = winner_at[2 * node], winner_at[2 * node + 1]
            if self._beats(a, b):
                winner_at[node], self._tree[node] = a, b
            else:
                winner_at[node], self._tree[node] = b, a
        self._winner = winner_at[1]

    def _head(self, run: int):
        return self._heads[run]  # None = exhausted → loses every match

    def _advance(self, run: int, by: int) -> None:
        pos = self._pos[run] + by
        self._pos[run] = pos
        arr = self._runs[run]
        self._heads[run] = arr[pos] if pos < arr.size else None
        self._remaining -= by

    def _beats(self, a: int, b: int) -> bool:
        """Does run ``a``'s head win (strictly smaller, ties to lower run)?"""
        ha, hb = self._heads[a], self._heads[b]
        if hb is None:
            return True
        if ha is None:
            return False
        return bool(ha < hb) or (bool(ha == hb) and a < b)

    def __len__(self) -> int:
        return self._remaining

    def pop(self):
        """Remove and return the globally smallest remaining element."""
        if self._remaining == 0:
            raise IndexError("pop from exhausted LoserTree")
        run = self._winner
        value = self._runs[run][self._pos[run]]
        self._advance(run, 1)
        # Replay the winner's path: at each node the path element meets the
        # stored loser; the loser of the match stays, the winner moves up.
        node = (self._k + run) // 2
        cur = run
        while node >= 1:
            stored = self._tree[node]
            if self._beats(stored, cur):
                self._tree[node], cur = cur, stored
            node //= 2
        self._winner = cur
        return value

    def pop_run(self) -> np.ndarray:
        """Remove and return the longest chunk the winner emits unbeaten.

        The tournament invariant makes the overall second-best one of the
        losers stored on the winner's root-to-leaf path, so the winner
        run keeps winning until its next element stops beating that
        challenger's head — a boundary one ``searchsorted`` finds.  The
        whole prefix is emitted as a slice and the path is replayed
        *once*, amortizing the ``O(log k)`` comparisons over the chunk;
        the element order is identical to repeated :meth:`pop` calls
        (ties included: an equal head still wins exactly when the winner
        has the lower run index).
        """
        if self._remaining == 0:
            raise IndexError("pop from exhausted LoserTree")
        run = self._winner
        arr = self._runs[run]
        pos = self._pos[run]
        # strongest challenger: best head among the losers on the path
        node = (self._k + run) // 2
        best = -1
        while node >= 1:
            stored = self._tree[node]
            if best < 0 or self._beats(stored, best):
                best = stored
            node //= 2
        limit = self._heads[best] if best >= 0 else None
        if limit is None:
            end = arr.size  # no live challenger: run empties in one go
        else:
            nxt = pos + 1
            if nxt >= arr.size or (
                arr[nxt] > limit if run < best else not arr[nxt] < limit
            ):
                end = nxt  # common case: a single element, no search needed
            else:
                side = "right" if run < best else "left"
                # the current head beats the challenger, so the chunk is
                # never empty; the floor also guarantees progress on
                # unordered (e.g. NaN-bearing) input
                end = max(
                    pos + int(np.searchsorted(arr[pos:], limit, side=side)),
                    nxt,
                )
        chunk = arr[pos:end]
        self._advance(run, chunk.size)
        node = (self._k + run) // 2
        cur = run
        while node >= 1:
            stored = self._tree[node]
            if self._beats(stored, cur):
                self._tree[node], cur = cur, stored
            node //= 2
        self._winner = cur
        return chunk


def loser_tree_merge(runs: Sequence[np.ndarray]) -> np.ndarray:
    """Single-pass k-way merge through a :class:`LoserTree`.

    Drains the tree in vectorised chunks (:meth:`LoserTree.pop_run`):
    whenever the winning run can emit several elements before the next
    challenger, they move as one slice and the path replay is amortized
    over the chunk — disjoint or duplicate-heavy runs merge at memcpy
    speed.  When a probe window shows the interleave is element-fine
    (average chunk below 2), the drain falls back to the plain
    :meth:`~LoserTree.pop` loop with exponential backoff before probing
    again, so adversarial inputs never pay the chunk bookkeeping.  Both
    paths emit the identical element sequence, so the output is
    byte-identical however the modes interleave.
    """
    runs = [np.asarray(r) for r in runs if np.asarray(r).size > 0]
    if not runs:
        return np.empty(0)
    if len(runs) == 1:
        return runs[0].copy()
    tree = LoserTree(runs)
    out = np.empty(len(tree), dtype=np.result_type(*runs))
    i = 0
    probe = 2048  # elements per chunked probe window
    backoff = probe  # element-mode stretch; doubles while probes fail
    while i < out.size:
        window_end = min(i + probe, out.size)
        start, chunks = i, 0
        while i < window_end:
            chunk = tree.pop_run()
            out[i : i + chunk.size] = chunk
            i += chunk.size
            chunks += 1
        if i >= out.size:
            break
        if i - start >= 2 * chunks:
            backoff = probe  # chunking pays here: keep probing eagerly
            continue
        element_end = min(i + backoff, out.size)
        while i < element_end:
            out[i] = tree.pop()
            i += 1
        backoff = min(backoff * 2, 65536)
    return out


def kway_merge(runs: Sequence[np.ndarray], strategy: str = "binary_tree") -> np.ndarray:
    """Merge sorted runs with the chosen strategy.

    ``strategy`` is one of ``binary_tree``, ``tournament``, or ``sort``
    (concatenate + re-sort, the paper's evaluated configuration).
    """
    runs = [np.asarray(r) for r in runs]
    if strategy == "binary_tree":
        return binary_merge_tree(runs)
    if strategy == "tournament":
        return loser_tree_merge(runs)
    if strategy == "sort":
        if not runs:
            return np.empty(0)
        out = np.concatenate(runs)
        out.sort(kind="stable")
        return out
    raise ValueError(f"unknown merge strategy {strategy!r}")
