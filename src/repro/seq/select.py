"""Sequential selection algorithms (§IV-A of the paper).

Three interchangeable k-th order statistic kernels:

* :func:`quickselect` — randomized, expected O(n);
* :func:`median_of_medians` — deterministic worst-case O(n) (Blum et al.);
* :func:`floyd_rivest` — sampling-based expected O(n) with small constants.

All operate on 1-D NumPy arrays and return the value of the k-th smallest
element (0-based).  They are used for local median finding inside
:mod:`repro.core.dselect` and as test oracles for each other.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["quickselect", "median_of_medians", "floyd_rivest", "nsmallest_value"]


def _validate(x: np.ndarray, k: int) -> np.ndarray:
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError("selection requires a 1-D array")
    if x.size == 0:
        raise ValueError("selection on an empty array")
    if not 0 <= k < x.size:
        raise IndexError(f"k={k} out of range [0, {x.size})")
    return x


def quickselect(x: np.ndarray, k: int, rng: np.random.Generator | None = None):
    """Randomized quickselect: the k-th smallest value of ``x`` (0-based).

    Vectorised partitioning: each round splits the working set around a
    random pivot with boolean masks, recursing iteratively into the side
    containing rank ``k``.
    """
    x = _validate(x, k)
    if rng is None:
        rng = np.random.default_rng(0x5EEC7)
    work = x
    while True:
        n = work.size
        if n <= 64:
            return np.partition(work, k)[k] if n > 32 else np.sort(work)[k]
        pivot = work[int(rng.integers(n))]
        less = work[work < pivot]
        if k < less.size:
            work = less
            continue
        equal = int(np.count_nonzero(work == pivot))
        if k < less.size + equal:
            return pivot
        k -= less.size + equal
        work = work[work > pivot]


def median_of_medians(x: np.ndarray, k: int):
    """Deterministic O(n) selection via the median-of-medians pivot rule.

    Groups of 5; the pivot is the true median of the group medians, which
    guarantees discarding at least 30% of the working set per round.
    """
    x = _validate(x, k)
    work = x
    while True:
        n = work.size
        if n <= 32:
            return np.sort(work)[k]
        m = (n // 5) * 5
        groups = np.sort(work[:m].reshape(-1, 5), axis=1)
        medians = groups[:, 2]
        if m < n:
            tail = np.sort(work[m:])
            medians = np.append(medians, tail[tail.size // 2])
        pivot = median_of_medians(medians, medians.size // 2)
        less = work[work < pivot]
        if k < less.size:
            work = less
            continue
        equal = int(np.count_nonzero(work == pivot))
        if k < less.size + equal:
            return pivot
        k -= less.size + equal
        work = work[work > pivot]


def floyd_rivest(
    x: np.ndarray, k: int, rng: np.random.Generator | None = None
):
    """Floyd–Rivest SELECT: expected n + min(k, n-k) + o(n) comparisons.

    Samples O(n^(2/3)) elements around the target rank to pick two pivots
    that bracket the k-th element with high probability, then recurses on
    the (usually tiny) middle band.
    """
    x = _validate(x, k)
    if rng is None:
        rng = np.random.default_rng(0xF10FD)
    work = x
    while True:
        n = work.size
        if n <= 600:
            return np.sort(work)[k]
        # Sample size and offset per Floyd & Rivest (1975).
        s = int(math.ceil(math.exp(2.0 * math.log(n) / 3.0)))
        sd = 0.5 * math.sqrt(s * math.log(n) * (n - s) / n)
        frac = k / n
        sample = work[rng.integers(0, n, size=s)]
        sample.sort()
        lo_idx = max(0, min(s - 1, int(frac * s - sd)))
        hi_idx = max(0, min(s - 1, int(frac * s + sd)))
        lo, hi = sample[lo_idx], sample[hi_idx]
        below = int(np.count_nonzero(work < lo))
        band = work[(work >= lo) & (work <= hi)]
        if k < below:
            work = work[work < lo]
            continue
        if k < below + band.size:
            if band.size == n:
                # Degenerate pivots (e.g. heavy duplicates): avoid looping.
                return np.partition(work, k)[k]
            work = band
            k -= below
            continue
        k -= below + band.size
        work = work[work > hi]


def nsmallest_value(x: np.ndarray, k: int):
    """NumPy oracle: k-th smallest value via ``np.partition``."""
    x = _validate(x, k)
    return np.partition(x, k)[k]
