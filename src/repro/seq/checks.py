"""Output-invariant checks used by tests and examples.

These encode the paper's §II output conditions: each partition sorted, no
element on rank ``i`` larger than any element on rank ``i+1``, the output a
permutation of the input, and load balance within ``N(1+eps)/P``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "is_sorted",
    "is_globally_sorted",
    "is_permutation",
    "balance_violation",
    "check_sorted_output",
]


def is_sorted(x: np.ndarray) -> bool:
    """Non-decreasing check of a 1-D array."""
    x = np.asarray(x)
    return bool(x.size <= 1 or np.all(x[:-1] <= x[1:]))


def is_globally_sorted(parts: Sequence[np.ndarray]) -> bool:
    """Every partition sorted and partition boundaries non-decreasing."""
    last = None
    for p in parts:
        p = np.asarray(p)
        if not is_sorted(p):
            return False
        if p.size:
            if last is not None and p[0] < last:
                return False
            last = p[-1]
    return True


def is_permutation(inputs: Sequence[np.ndarray], outputs: Sequence[np.ndarray]) -> bool:
    """The multiset of output keys equals the multiset of input keys."""
    ins = [np.asarray(p) for p in inputs if np.asarray(p).size]
    outs = [np.asarray(p) for p in outputs if np.asarray(p).size]
    if not ins and not outs:
        return True
    if bool(ins) != bool(outs):
        return False
    a = np.sort(np.concatenate(ins), kind="stable")
    b = np.sort(np.concatenate(outs), kind="stable")
    return a.shape == b.shape and bool(np.array_equal(a, b))


def balance_violation(
    sizes: Sequence[int], capacities: Sequence[int], eps: float
) -> int:
    """Largest excess over the allowed per-rank load, in elements.

    Definition 1 allows each splitter rank to deviate from its target by
    ``eps * N / (2 * P)``, so a partition size (the difference of two
    adjacent splitter ranks) may deviate from its capacity by up to twice
    that, i.e. ``eps * N / P`` — which is exactly the §II guarantee of at
    most ``N * (1 + eps) / P`` elements per rank.  With ``eps == 0``
    (perfect partitioning) sizes must match capacities exactly.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    caps = np.asarray(capacities, dtype=np.int64)
    if sizes.shape != caps.shape:
        raise ValueError("sizes and capacities must align")
    n_total = int(caps.sum())
    p = max(len(caps), 1)
    tol = 2 * int(np.floor(eps * n_total / (2 * p)))
    excess = np.abs(sizes - caps) - tol
    return int(max(0, excess.max(initial=0)))


def check_sorted_output(
    inputs: Sequence[np.ndarray],
    outputs: Sequence[np.ndarray],
    eps: float = 0.0,
) -> None:
    """Assert the full §II output contract; raises AssertionError on failure."""
    assert is_globally_sorted(outputs), "output is not globally sorted"
    assert is_permutation(inputs, outputs), "output is not a permutation of input"
    caps = [int(np.asarray(p).size) for p in inputs]
    sizes = [int(np.asarray(p).size) for p in outputs]
    viol = balance_violation(sizes, caps, eps)
    assert viol == 0, f"load balance violated by {viol} element(s)"
