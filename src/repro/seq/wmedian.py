"""Weighted median (Definition 2 of the paper).

Given values :math:`x_1..x_n` with positive normalized weights
:math:`w_1..w_n`, the weighted median is the value :math:`x_k` with

.. math::

    \\sum_{x_i < x_k} w_i < 1/2 \\quad\\text{and}\\quad \\sum_{x_i > x_k} w_i \\le 1/2.

It generalizes the median-of-medians property used by the distributed
selection: picking the weighted median of per-rank medians (weighted by
partition sizes) guarantees that at least one quarter of the global working
set is discarded per iteration.
"""

from __future__ import annotations

import numpy as np

__all__ = ["weighted_median", "is_weighted_median"]


def weighted_median(values: np.ndarray, weights: np.ndarray):
    """The lower weighted median of ``values`` under ``weights``.

    Weights need not be normalized; they must be non-negative with a
    positive sum.  Ties in value are merged, so duplicate values cannot
    split a weight mass.
    """
    values = np.asarray(values)
    weights = np.asarray(weights, dtype=np.float64)
    if values.ndim != 1 or weights.ndim != 1 or values.size != weights.size:
        raise ValueError("values and weights must be 1-D of equal length")
    if values.size == 0:
        raise ValueError("weighted median of an empty sequence")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("weights must not all be zero")

    order = np.argsort(values, kind="stable")
    v = values[order]
    w = weights[order]
    cumw = np.cumsum(w)
    # First index where the cumulative weight reaches half the total mass.
    half = total / 2.0
    idx = int(np.searchsorted(cumw, half, side="left"))
    idx = min(idx, v.size - 1)
    return v[idx]


def is_weighted_median(values: np.ndarray, weights: np.ndarray, candidate) -> bool:
    """Check Definition 2: strictly-below mass < 1/2 and above mass <= 1/2."""
    values = np.asarray(values)
    weights = np.asarray(weights, dtype=np.float64)
    total = float(weights.sum())
    below = float(weights[values < candidate].sum())
    above = float(weights[values > candidate].sum())
    # Exact comparisons: callers use integer or dyadic-rational weights, so
    # the half-mass boundary is representable and the strictness of the
    # first condition is meaningful.
    return below < total / 2.0 and above <= total / 2.0
