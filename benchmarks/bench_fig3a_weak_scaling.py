"""Fig. 3(a) — weak scaling at 128 MB per rank (16 ranks/node, 2 GB/node).

Paper: DASH runs 2.3 s on one node and 4.6 s on 128 nodes (3584 cores,
~256 GB exchanged); the Charm++ HSS histogramming is volatile (5–25 s) and
cannot keep up.  Shapes checked: DASH time grows by roughly 1.3–2x over
the sweep, efficiency lands near the paper's ~0.5–0.75, and the HSS
volatility band is wide and above DASH at scale.
"""

import pytest

from repro.bench import fig3a_weak_scaling, run_sort_trial
from repro.machine import supermuc_phase2


def test_fig3a_execute(emit):
    series = emit(fig3a_weak_scaling(mode="execute", repeats=3))
    rows = series.rows
    # weak scaling: time non-decreasing with node count (within noise)
    assert rows[-1]["dash_s"] >= rows[0]["dash_s"] * 0.9


def test_fig3a_model(emit):
    series = emit(fig3a_weak_scaling(mode="model", repeats=3))
    rows = {r["nodes"]: r for r in series.rows}
    t1, t128 = rows[1]["dash_s"], rows[128]["dash_s"]
    # paper: 2.3s -> 4.6s; our calibrated machine lands near those absolutes
    assert 1.5 < t1 < 4.0
    assert 1.2 < t128 / t1 < 2.5
    # efficiency well-behaved (paper ~0.5)
    assert 0.45 < rows[128]["dash_eff"] <= 1.0
    # HSS: volatile and not faster than DASH at scale
    assert rows[128]["hss_hi"] > rows[128]["dash_s"]
    assert rows[128]["hss_hi"] - rows[128]["hss_lo"] > 0


def test_fig3a_kernel(benchmark):
    machine = supermuc_phase2()

    def trial():
        return run_sort_trial(
            16, 4096, algo="dash", machine=machine, ranks_per_node=16, seed=7
        )

    result = benchmark(trial)
    assert result.total > 0
