"""Auto-tuning study — tuned plans vs the paper-default configuration.

The paper evaluates one fixed configuration (re-sort merge, min-max initial
splitter guesses, no exchange/merge overlap).  ``repro.tune`` searches that
knob space per workload fingerprint; this benchmark sweeps distinct
(workload, machine) fingerprints and records the virtual-clock makespan of
the paper default against the auto-tuned plan.

On every swept fingerprint the tuned plan must be no worse than the
default — the planner always dry-runs the paper default as its control, so
at worst it returns it.
"""

import os

import pytest

from repro.bench import Series
from repro.bench.harness import run_sort_trial
from repro.machine import abstract_cluster, supermuc_phase2
from repro.tune import PlanCache, dry_run_count

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "1"))
N_PER_RANK = 2000 * SCALE

#: (name, machine factory, p, ranks_per_node, distribution)
FINGERPRINTS = [
    ("abstract2n-zipf", lambda: abstract_cluster(2, cores_per_node=8), 8, 8, "zipf_u64"),
    ("supermuc4n-uniform", lambda: supermuc_phase2(nodes=4), 16, 4, "uniform_u64"),
    ("abstract4n-exponential", lambda: abstract_cluster(4, cores_per_node=4), 16, 4,
     "exponential_f64"),
]


def test_autotune_vs_default(emit):
    series = Series(
        "autotune",
        "auto-tuned plan vs paper-default configuration (virtual seconds)",
        ["fingerprint", "default_s", "tuned_s", "speedup", "plan"],
        params={"n_per_rank": N_PER_RANK},
        notes="speedup = default/tuned; the planner keeps the paper default "
        "as its dry-run control, so tuned should never lose on the "
        "fingerprints it was able to measure at dry-run scale.",
    )
    for name, factory, p, rpn, dist in FINGERPRINTS:
        machine = factory()
        default = run_sort_trial(
            p, N_PER_RANK, algo="dash", dist=dist, machine=machine, ranks_per_node=rpn
        )
        tuned = run_sort_trial(
            p, N_PER_RANK, dist=dist, machine=machine, ranks_per_node=rpn, plan="auto"
        )
        series.add(
            fingerprint=name,
            default_s=default.total,
            tuned_s=tuned.total,
            speedup=default.total / tuned.total,
            plan=tuned.extra["plan_algo"] + ":" + tuned.extra["plan_id"],
        )
    emit(series)
    rows = {r["fingerprint"]: r for r in series.rows}
    # the two acceptance fingerprints: tuned is never worse than default
    for name in ("abstract2n-zipf", "supermuc4n-uniform"):
        assert rows[name]["tuned_s"] <= rows[name]["default_s"], rows[name]


def test_warm_cache_amortizes_planning(tmp_path):
    machine = abstract_cluster(2, cores_per_node=8)
    cache = PlanCache(tmp_path / "plans.json")
    kwargs = dict(dist="zipf_u64", machine=machine, ranks_per_node=8,
                  plan="auto", plan_cache=cache)
    before = dry_run_count()
    cold = run_sort_trial(8, N_PER_RANK, **kwargs)
    assert dry_run_count() > before  # planning happened
    before = dry_run_count()
    warm = run_sort_trial(8, N_PER_RANK, **kwargs)
    assert dry_run_count() == before  # and is fully amortized
    assert warm.extra["plan_cache_hit"] and not cold.extra["plan_cache_hit"]
    assert warm.extra["plan_id"] == cold.extra["plan_id"]


@pytest.mark.parametrize("name,factory,p,rpn,dist", FINGERPRINTS[:1])
def test_autotune_kernel(benchmark, name, factory, p, rpn, dist):
    machine = factory()

    def once():
        return run_sort_trial(
            p, 1000, dist=dist, machine=machine, ranks_per_node=rpn, plan="auto"
        ).total

    total = benchmark(once)
    assert total > 0
