"""Micro-benchmarks of the library's hot kernels (real wall time).

Not a paper artefact, but the regression net under every experiment: the
sequential selection/merge kernels, the vectorised histogram, the runtime's
collectives, and a small end-to-end sort.
"""

import numpy as np
import pytest

from repro.baselines import hss_sort
from repro.core import dselect, histogram_sort
from repro.data import make_partition
from repro.mpi import run_spmd
from repro.seq import (
    floyd_rivest,
    local_histogram,
    merge_two_sorted,
    quickselect,
    weighted_median,
)

rng = np.random.default_rng(99)


class TestSequentialKernels:
    def test_quickselect(self, benchmark):
        x = rng.normal(size=200_000)
        v = benchmark(quickselect, x, 100_000)
        assert v == np.partition(x, 100_000)[100_000]

    def test_floyd_rivest(self, benchmark):
        x = rng.normal(size=200_000)
        v = benchmark(floyd_rivest, x, 100_000)
        assert v == np.partition(x, 100_000)[100_000]

    def test_weighted_median(self, benchmark):
        v = rng.normal(size=10_000)
        w = rng.integers(1, 10, 10_000).astype(np.float64)
        benchmark(weighted_median, v, w)

    def test_merge_two(self, benchmark):
        a = np.sort(rng.normal(size=100_000))
        b = np.sort(rng.normal(size=100_000))
        out = benchmark(merge_two_sorted, a, b)
        assert out.size == 200_000

    def test_local_histogram(self, benchmark):
        part = np.sort(rng.integers(0, 10**9, 500_000).astype(np.uint64))
        probes = np.sort(rng.integers(0, 10**9, 1023).astype(np.uint64))
        lo, up = benchmark(local_histogram, part, probes)
        assert lo.size == 1023


class TestRuntimeKernels:
    def test_allreduce_array(self, benchmark):
        def prog(comm):
            return comm.allreduce(np.ones(1024))

        benchmark(lambda: run_spmd(16, prog))

    def test_alltoallv(self, benchmark):
        def prog(comm):
            chunks = [np.full(256, comm.rank) for _ in range(comm.size)]
            return comm.alltoallv(chunks)

        benchmark(lambda: run_spmd(16, prog))

    def test_comm_split(self, benchmark):
        def prog(comm):
            sub = comm.split(comm.rank % 4, comm.rank)
            return sub.allreduce(1)

        benchmark(lambda: run_spmd(16, prog))


class TestEndToEnd:
    def test_histogram_sort_small(self, benchmark):
        def prog(comm):
            local = make_partition("uniform_u64", 4096, rank=comm.rank, seed=1)
            return histogram_sort(comm, local).output.size

        sizes = benchmark(lambda: run_spmd(8, prog))
        assert sizes == [4096] * 8

    def test_dselect_small(self, benchmark):
        def prog(comm):
            local = make_partition("normal_f64", 8192, rank=comm.rank, seed=1)
            return dselect(comm, local, 4 * 8192)

        benchmark(lambda: run_spmd(8, prog))

    def test_hss_small(self, benchmark):
        def prog(comm):
            local = make_partition("uniform_u64", 4096, rank=comm.rank, seed=1)
            return hss_sort(comm, local).output.size

        sizes = benchmark(lambda: run_spmd(8, prog))
        assert sizes == [4096] * 8
