"""Ablations of the design choices DESIGN.md calls out.

* ``eps`` sweep — §VI-B: softening perfect partitioning cuts histogram
  rounds (and splitting time).
* shared-memory windows — §VI-A.1: pricing intra-node traffic as memcpy
  instead of MPI loop-back speeds up the exchange.
* initial guesses / cross-probe tightening — §V-A's proposed optimisations
  to splitter convergence.
* merge strategy — §V-C: re-sort vs binary tree vs tournament inside the
  full sort.
"""

import pytest

from repro.bench import (
    epsilon_sweep,
    guess_policy_ablation,
    merge_strategy_ablation,
    overlap_ablation,
    run_sort_trial,
    shm_ablation,
)
from repro.core import SortConfig
from repro.machine import supermuc_phase2


def test_epsilon_sweep(emit):
    series = emit(epsilon_sweep(repeats=2))
    rows = {r["eps"]: r for r in series.rows}
    assert rows[0.1]["rounds"] < rows[0.0]["rounds"]
    assert rows[0.1]["splitting_s"] < rows[0.0]["splitting_s"]


def test_shm_ablation(emit):
    series = emit(shm_ablation(repeats=2))
    rows = {r["use_shm"]: r for r in series.rows}
    assert rows[False]["exchange_s"] > rows[True]["exchange_s"]
    assert rows[False]["total_s"] > rows[True]["total_s"]


def test_guess_policy_ablation(emit):
    series = emit(guess_policy_ablation(repeats=2))
    rows = {(r["initial_guess"], r["cross_probe"]): r for r in series.rows}
    base = rows[("minmax", False)]["rounds"]
    # cross-probe tightening never needs more rounds than the baseline
    assert rows[("minmax", True)]["rounds"] <= base
    assert rows[("sample", True)]["rounds"] <= base


def test_merge_strategy_ablation(emit):
    series = emit(merge_strategy_ablation(repeats=2))
    rows = {r["strategy"]: r for r in series.rows}
    # a binary merge tree beats re-sorting the concatenation (modelled time)
    assert rows["binary_tree"]["merge_s"] < rows["sort"]["merge_s"]
    assert set(rows) == {"sort", "binary_tree", "tournament", "adaptive"}


def test_overlap_ablation(emit):
    series = emit(overlap_ablation(repeats=2))
    rows = {r["overlap"]: r for r in series.rows}
    # the fused path eliminates the separate merge superstep ...
    assert rows[True]["merge_s"] == 0.0
    # ... and never loses badly overall at this scale
    assert rows[True]["total_s"] <= rows[False]["total_s"] * 1.3


def test_ablation_kernel(benchmark):
    """Kernel: a full eps-relaxed sort trial."""
    machine = supermuc_phase2()
    trial = benchmark(
        run_sort_trial,
        32,
        2048,
        algo="dash",
        machine=machine,
        ranks_per_node=16,
        config=SortConfig(eps=0.01),
        seed=11,
    )
    assert trial.total > 0
