"""Fig. 2(b) — strong-scaling phase fractions.

Paper's headline: the histogramming (splitting) fraction grows with the
processor count and dominates beyond ~2000 ranks, while the ALL-TO-ALL
fraction stays roughly stable and "other" is negligible.
"""

import pytest

from repro.bench import fig2b_phase_breakdown
from repro.core import histogram_sort
from repro.data import make_partition
from repro.machine import supermuc_phase2
from repro.mpi import run_spmd


def test_fig2b_execute(emit):
    series = emit(fig2b_phase_breakdown(mode="execute", repeats=2))
    assert all(abs(sum((r["frac_sort"], r["frac_split"], r["frac_exchange"], r["frac_other"])) - 1.0) < 1e-6
               for r in series.rows)


def test_fig2b_model(emit):
    series = emit(fig2b_phase_breakdown(mode="model"))
    rows = {r["nodes"]: r for r in series.rows}
    # histogramming fraction grows monotonically with scale ...
    assert rows[128]["frac_split"] > rows[8]["frac_split"] > rows[1]["frac_split"]
    # ... and dominates at the largest scale (paper: the bottleneck >2000 ranks)
    assert rows[128]["frac_split"] == max(
        rows[128]["frac_split"], rows[128]["frac_exchange"], rows[128]["frac_other"]
    )
    # "other" stays negligible
    assert all(r["frac_other"] < 0.1 for r in series.rows)


def test_fig2b_kernel(benchmark):
    """Kernel: a full sort whose per-phase timings feed the breakdown."""
    machine = supermuc_phase2()

    def prog(comm):
        local = make_partition("uniform_u64", 1024, rank=comm.rank, seed=3)
        return histogram_sort(comm, local).phases

    phases = benchmark(
        lambda: run_spmd(28, prog, machine=machine, ranks_per_node=28)
    )
    assert all(p["local_sort"] > 0 for p in phases)
