"""§VI-E.2 — the k-way merge study.

Merging k equal sorted chunks of 32-bit integers on one node, sweeping the
chunk count and the thread count, for three strategies: an OpenMP-task
binary merge tree, a GNU-Parallel-style tournament (loser-tree) multiway
merge, and a parallel re-sort (PSTL).

Paper findings reproduced: two threads merging few large chunks achieve a
notable speedup over sorting; many threads over many small chunks degrade
(fan-in cache misses + the memory-bandwidth wall) until the parallel sort
clearly outperforms merging.
"""

import numpy as np
import pytest

from repro.bench import merge_strategy_study
from repro.seq import kway_merge


def test_merge_study_series(emit):
    series = emit(merge_strategy_study())
    rows = {(r["k"], r["threads"]): r for r in series.rows}
    # few large chunks, few threads: merging beats re-sorting decisively
    r = rows[(4, 2)]
    assert min(r["binary_tree_s"], r["tournament_s"]) < r["sort_s"] / 3
    # many small chunks, many threads: the parallel sort wins
    assert rows[(1024, 28)]["winner"] == "sort"
    # merging stops improving with threads once bandwidth-bound
    assert rows[(1024, 28)]["binary_tree_s"] > rows[(1024, 28)]["sort_s"] * 0.9


def test_merge_study_trend_with_k(emit):
    series = merge_strategy_study(ks=(4, 64, 1024), threads=(28,))
    sort_margin = []
    for r in series.rows:
        best_merge = min(r["binary_tree_s"], r["tournament_s"])
        sort_margin.append(r["sort_s"] / best_merge)
    # sort's relative position improves as chunks shrink
    assert sort_margin[0] > sort_margin[-1]


@pytest.mark.parametrize("strategy", ["binary_tree", "tournament", "sort"])
def test_merge_kernel(benchmark, strategy, rng=np.random.default_rng(3)):
    """Real wall-time micro-bench of the in-memory merge kernels."""
    runs = [np.sort(rng.integers(0, 10**6, 20_000).astype(np.int32)) for _ in range(16)]
    out = benchmark(kway_merge, runs, strategy)
    assert out.size == 16 * 20_000
