"""§V-A — histogramming iteration counts by key type and rank count.

Paper claims: 64-bit floats converge in 60–64 iterations, 32-bit floats in
25–35, uint64 drawn from [0, 1e9] in ~30; the processor count does not
drive the iteration count.  At the execute-mode N the absolute numbers are
smaller (rounds grow ~1 per doubling of N by the min-gap argument and the
paper sorts 2^31+ keys), so the checks are on ordering and P-independence;
EXPERIMENTS.md records the extrapolation to paper scale.
"""

import numpy as np
import pytest

from repro.bench import iterations_experiment
from repro.core import find_splitters
from repro.data import make_partition
from repro.mpi import run_spmd


def test_iterations_series(emit):
    series = emit(iterations_experiment(repeats=3, n_per_rank=1 << 12))
    by_dist: dict[str, list[int]] = {}
    for r in series.rows:
        by_dist.setdefault(r["dist"], []).append(r["rounds_med"])
    # key width ordering: f32 needs fewer rounds than f64
    assert np.median(by_dist["normal_f32"]) <= np.median(by_dist["normal_f64"])
    # uint64 restricted to [0,1e9]: bounded by ~30 key bits
    assert max(by_dist["uniform_u64"]) <= 32
    # P-independence at fixed N
    for dist, rounds in by_dist.items():
        assert max(rounds) - min(rounds) <= 6, (dist, rounds)


def test_iterations_grow_with_n(emit):
    """Min-gap argument: rounds grow ~1 per doubling of N (until key width).

    At the paper's N ~ 2^31 this extrapolates to the reported 60-64 rounds
    for 64-bit floats; noise per seed is a few rounds, so medians over
    seeds are compared across a 64x size span.
    """

    def prog(comm, n_per_rank, seed):
        local = np.sort(
            make_partition("normal_f64", n_per_rank, rank=comm.rank, seed=seed)
        )
        return find_splitters(comm, local).rounds

    def med_rounds(n_per_rank):
        return float(
            np.median([run_spmd(8, prog, n_per_rank, s)[0] for s in range(5)])
        )

    small = med_rounds(1 << 10)
    large = med_rounds(1 << 16)
    assert large > small
    assert large - small <= 14  # ~log2(64) + noise


def test_iterations_kernel(benchmark):
    def once():
        def prog(comm):
            local = np.sort(make_partition("uniform_u64", 4096, rank=comm.rank, seed=2))
            return find_splitters(comm, local).rounds

        return run_spmd(16, prog)[0]

    rounds = benchmark(once)
    assert rounds > 0
