"""Fig. 3(b) — weak-scaling phase fractions.

Paper: local sorting and the ALL-TO-ALL exchange dominate (the network
moves ~256 GB at 128 nodes); the splitter ALLREDUCEs stay amortized.
"""

import pytest

from repro.bench import fig3b_phase_breakdown
from repro.model import predict_histsort
from repro.machine import supermuc_phase2


def test_fig3b_execute(emit):
    series = emit(fig3b_phase_breakdown(mode="execute", repeats=2))
    for r in series.rows:
        assert r["local_sort"] > 0 and r["exchange"] >= 0


def test_fig3b_model(emit):
    series = emit(fig3b_phase_breakdown(mode="model"))
    rows = {r["nodes"]: r for r in series.rows}
    big = rows[128]
    # local sort (incl. merge) + exchange together dominate ...
    assert big["frac_sort"] + big["frac_exchange"] > 0.8
    # ... histogramming stays a minor fraction in weak scaling
    assert big["frac_split"] < 0.25
    # exchange fraction grows from 1 node to many nodes
    assert big["frac_exchange"] > rows[1]["frac_exchange"]


def test_fig3b_kernel(benchmark):
    """Kernel: the model evaluation itself (used 8x per series)."""
    machine = supermuc_phase2()
    pred = benchmark(
        predict_histsort,
        machine,
        2**24 * 2048,
        2048,
        ranks_per_node=16,
        rounds=30,
    )
    assert pred.total > 0
