"""Table I — the SuperMUC Phase 2 machine description.

Prints the preset in Table I form and benchmarks the cost model's hottest
query (``alltoallv_per_rank``), which every simulated exchange calls.
"""

import numpy as np
import pytest

from repro.bench import table1_machine
from repro.machine import CostModel, make_placement, supermuc_phase2


def test_tab1_machine_table(benchmark, emit):
    series = emit(table1_machine())
    rows = {r["item"]: r["value"] for r in series.rows}
    assert rows["Cores/node"] == 28
    assert rows["NUMA domains"] == 4

    machine = supermuc_phase2(nodes=8)
    cm = CostModel(make_placement(machine, 128, ranks_per_node=16))
    vols = np.random.default_rng(0).integers(0, 1 << 16, (128, 128)).astype(float)
    ranks = list(range(128))

    result = benchmark(cm.alltoallv_per_rank, vols, ranks)
    assert result.shape == (128,)
