"""Fig. 2(a) — strong scaling of DASH vs the Charm++-style HSS comparator.

Two series are produced:

* ``fig2a_execute`` — the real algorithms executed in-process at 1..4
  simulated nodes (paper layout: 28 ranks/node DASH, 16 ranks/node HSS),
  timings in virtual seconds, median of repeated seeds with 95% CI;
* ``fig2a_model``  — the calibrated closed-form model at the paper's full
  1..128 node / 3584 core scale with 32 GB of uint64 keys.

Paper shapes to check: near-linear speedup at low node counts, efficiency
around 0.5–0.6 at 3500 cores, DASH at least as fast as HSS, HSS with the
wider confidence band.
"""

import pytest

from repro.bench import fig2a_strong_scaling, run_sort_trial
from repro.machine import supermuc_phase2


def test_fig2a_execute(emit):
    series = emit(fig2a_strong_scaling(mode="execute", repeats=3))
    rows = series.rows
    assert len(rows) >= 3
    # strong scaling: more nodes, less time
    assert rows[-1]["dash_s"] < rows[0]["dash_s"]
    # DASH at least competitive with HSS at the largest executed scale
    assert rows[-1]["dash_s"] <= rows[-1]["hss_s"] * 1.25


def test_fig2a_model(emit):
    series = emit(fig2a_strong_scaling(mode="model", repeats=3))
    rows = {r["nodes"]: r for r in series.rows}
    assert rows[128]["cores"] == 3584
    # paper: parallel efficiency ~0.6 at >3500 cores (we accept 0.35..0.8)
    assert 0.35 <= rows[128]["dash_eff"] <= 0.8
    # near-linear at low node counts
    assert rows[2]["dash_eff"] > 0.7
    # DASH <= HSS everywhere; HSS volatility band is wider
    for r in series.rows:
        assert r["dash_s"] <= r["hss_s"] * 1.05
        assert r["hss_hi"] >= r["hss_s"]


def test_fig2a_kernel(benchmark):
    """Representative kernel: one executed DASH sort trial (virtual time)."""
    machine = supermuc_phase2()

    def trial():
        return run_sort_trial(
            28, 2048, algo="dash", machine=machine, ranks_per_node=28, seed=5
        )

    result = benchmark(trial)
    assert result.total > 0
