"""Fig. 4 — shared-memory strong scaling on a single node.

5 GB of normally distributed float64 keys; 7..28 cores over 1..4 NUMA
domains; DASH (MPI ranks + one cross-domain move) vs Intel PSTL (TBB task
merge sort) vs an OpenMP task merge sort.

Paper shape: TBB wins when only one NUMA domain is occupied; DASH surpasses
TBB as soon as data crosses NUMA boundaries; OpenMP trails both.
"""

import pytest

from repro.bench import fig4_shared_memory
from repro.machine import single_node
from repro.smp import parallel_mergesort_time


def test_fig4_series(emit):
    series = emit(fig4_shared_memory())
    rows = {r["numa_domains"]: r for r in series.rows}
    # crossover exactly as in the paper
    assert rows[1]["winner"] == "tbb"
    for domains in (2, 3, 4):
        assert rows[domains]["winner"] == "dash", rows[domains]
    # OpenMP trails TBB everywhere
    for r in series.rows:
        assert r["openmp_s"] > r["tbb_s"]
    # DASH keeps scaling with domains
    assert rows[4]["dash_s"] < rows[2]["dash_s"] < rows[1]["dash_s"]


def test_fig4_kernel(benchmark):
    """Kernel: one TBB merge-sort schedule simulation (28 cores)."""
    machine = single_node()
    run = benchmark(
        parallel_mergesort_time,
        machine,
        5 * 2**30 // 8,
        cores=28,
        active_domains=4,
        runtime="tbb",
    )
    assert run.seconds > 0
