"""Shared infrastructure of the benchmark suite.

Each ``bench_*.py`` regenerates one paper artefact (figure/table): it runs
the corresponding experiment from :mod:`repro.bench`, prints the series in
paper-comparable form, saves it to ``results/<experiment>.json``, and wires
a representative kernel into pytest-benchmark so ``--benchmark-only`` also
measures real wall time.

Scale: execute-mode problem sizes are kept small so the suite completes in
minutes; set ``REPRO_BENCH_SCALE=4`` (or more) to enlarge them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a Series and persist it under results/."""

    def _emit(series):
        print("\n" + series.table() + "\n")
        series.save(results_dir)
        return series

    return _emit
