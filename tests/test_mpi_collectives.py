"""Collective semantics of the SPMD runtime."""

import numpy as np
import pytest

from repro.mpi import MAX, MIN, PROD, SUM, CommunicatorError, SPMDError, run_spmd


class TestBcast:
    def test_scalar(self, run):
        def prog(comm):
            return comm.bcast("payload" if comm.rank == 0 else None)

        assert run(4, prog) == ["payload"] * 4

    def test_nonzero_root(self, run):
        def prog(comm):
            return comm.bcast(comm.rank if comm.rank == 2 else None, root=2)

        assert run(4, prog) == [2] * 4

    def test_array_copies_per_rank(self, run):
        def prog(comm):
            arr = comm.bcast(np.arange(3) if comm.rank == 0 else None)
            arr += comm.rank  # each rank owns its copy
            return int(arr[0])

        assert run(3, prog) == [0, 1, 2]


class TestReduceAllreduce:
    def test_allreduce_sum_scalar(self, run):
        def prog(comm):
            return comm.allreduce(comm.rank + 1)

        assert run(4, prog) == [10] * 4

    def test_allreduce_ops(self, run):
        def prog(comm):
            v = comm.rank + 1
            return (
                comm.allreduce(v, MIN),
                comm.allreduce(v, MAX),
                comm.allreduce(v, PROD),
            )

        assert run(3, prog)[0] == (1, 3, 6)

    def test_allreduce_array_elementwise(self, run):
        def prog(comm):
            return comm.allreduce(np.array([comm.rank, 1]))

        out = run(4, prog)
        for arr in out:
            assert np.array_equal(arr, [6, 4])

    def test_allreduce_tuple_elementwise(self, run):
        def prog(comm):
            return comm.allreduce((comm.rank, -comm.rank), MIN)

        assert run(4, prog)[0] == (0, -3)

    def test_reduce_only_root_gets_value(self, run):
        def prog(comm):
            return comm.reduce(1, SUM, root=1)

        out = run(3, prog)
        assert out == [None, 3, None]

    def test_reduce_rank_order_fold(self, run):
        # String concatenation is non-commutative: order must be rank order.
        from repro.mpi import ReduceOp

        cat = ReduceOp("cat", lambda a, b: a + b)

        def prog(comm):
            return comm.reduce(str(comm.rank), cat, root=0)

        assert run(4, prog)[0] == "0123"


class TestGatherScatter:
    def test_gather(self, run):
        def prog(comm):
            return comm.gather(comm.rank * 2, root=0)

        out = run(4, prog)
        assert out[0] == [0, 2, 4, 6]
        assert out[1] is None

    def test_allgather(self, run):
        def prog(comm):
            return comm.allgather(comm.rank)

        assert run(3, prog) == [[0, 1, 2]] * 3

    def test_scatter(self, run):
        def prog(comm):
            vals = [i * i for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(vals, root=0)

        assert run(4, prog) == [0, 1, 4, 9]

    def test_scatter_wrong_length_raises(self, run):
        def prog(comm):
            vals = [1] if comm.rank == 0 else None
            return comm.scatter(vals, root=0)

        with pytest.raises(SPMDError):
            run(2, prog)


class TestAlltoall:
    def test_alltoall_transpose(self, run):
        def prog(comm):
            return comm.alltoall([f"{comm.rank}->{d}" for d in range(comm.size)])

        out = run(3, prog)
        assert out[1] == ["0->1", "1->1", "2->1"]

    def test_alltoallv_roundtrip(self, run):
        def prog(comm):
            # deliberately p²-total payload — exercises varying row sizes
            chunks = [np.full(d + 1, comm.rank) for d in range(comm.size)]
            got = comm.alltoallv(chunks)  # spmd: ignore[P2-TRAFFIC]
            return [c.tolist() for c in got]

        out = run(3, prog)
        # rank 1 receives chunks of size 2 from every source
        assert out[1] == [[0, 0], [1, 1], [2, 2]]

    def test_alltoallv_wrong_count(self, run):
        def prog(comm):
            comm.alltoallv([np.zeros(1)])

        with pytest.raises(SPMDError):
            run(2, prog)

    def test_alltoallv_empty_chunks(self, run):
        def prog(comm):
            chunks = [np.zeros(0) for _ in range(comm.size)]
            got = comm.alltoallv(chunks)
            return sum(c.size for c in got)

        assert run(4, prog) == [0, 0, 0, 0]


class TestScans:
    def test_inclusive_scan(self, run):
        def prog(comm):
            return comm.scan(comm.rank + 1)

        assert run(4, prog) == [1, 3, 6, 10]

    def test_exscan(self, run):
        def prog(comm):
            return comm.exscan(comm.rank + 1)

        assert run(4, prog) == [None, 1, 3, 6]

    def test_scan_arrays(self, run):
        def prog(comm):
            return comm.scan(np.array([1, comm.rank]))

        out = run(3, prog)
        assert np.array_equal(out[2], [3, 3])


class TestBarrierAndClocks:
    def test_barrier_synchronizes_clocks(self, run):
        def prog(comm):
            if comm.rank == 0:
                comm.compute(1.0)
            comm.barrier()
            return comm.clock

        clocks = run(4, prog)
        assert min(clocks) > 1.0
        assert max(clocks) - min(clocks) < 1e-9

    def test_compute_accumulates(self, run):
        def prog(comm):
            comm.compute(0.5)
            comm.compute(0.25)
            return comm.clock

        assert run(2, prog)[0] >= 0.75

    def test_negative_compute_rejected(self, run):
        def prog(comm):
            comm.compute(-1.0)

        with pytest.raises(SPMDError):
            run(1, prog)

    def test_collective_clock_monotone(self, run):
        def prog(comm):
            t0 = comm.clock
            comm.allreduce(1)
            t1 = comm.clock
            assert t1 > t0
            return True

        assert all(run(4, prog))


class TestStats:
    def test_traffic_recorded(self):
        def prog(comm):
            comm.allreduce(np.zeros(16))
            if comm.rank == 0:
                comm.send(np.zeros(8), dest=1)
            if comm.rank == 1:
                comm.recv(source=0)

        _, rt = run_spmd(2, prog, return_runtime=True)
        summary = rt.stats.summary()
        assert summary["msgs_sent"] == 1
        assert summary["bytes_sent"] == 64
        assert "allreduce" in summary["collectives"]
