"""The §VI-E.1 overlapped exchange+merge path."""

import numpy as np
import pytest

from repro.core import (
    SortConfig,
    build_exchange_plan,
    exchange_merge_overlap,
    find_splitters,
    histogram_sort,
    one_factor_partner,
)
from repro.data import make_partition
from repro.seq import check_sorted_output


class TestOneFactorSchedule:
    @pytest.mark.parametrize("p", [2, 4, 6, 8, 16])
    def test_even_p_perfect_matching(self, p):
        for r in range(p - 1):
            partners = [one_factor_partner(rank, p, r) for rank in range(p)]
            # involution with no fixed points: a perfect matching
            for rank in range(p):
                assert partners[rank] != rank
                assert partners[partners[rank]] == rank

    @pytest.mark.parametrize("p", [3, 5, 7, 9])
    def test_odd_p_one_idle(self, p):
        for r in range(p):
            partners = [one_factor_partner(rank, p, r) for rank in range(p)]
            idle = [rank for rank in range(p) if partners[rank] == rank]
            assert len(idle) == 1
            for rank in range(p):
                if partners[rank] != rank:
                    assert partners[partners[rank]] == rank

    @pytest.mark.parametrize("p", [2, 4, 5, 8, 9, 16])
    def test_every_pair_meets_exactly_once(self, p):
        nrounds = (p - 1) if p % 2 == 0 else p
        met = set()
        for r in range(nrounds):
            for rank in range(p):
                partner = one_factor_partner(rank, p, r)
                if partner != rank:
                    pair = (min(rank, partner), max(rank, partner))
                    met.add((pair, r))
        pairs = {pair for pair, _ in met}
        assert len(pairs) == p * (p - 1) // 2
        assert len(met) == 2 * len(pairs) // 2  # each pair in exactly one round

    def test_single_rank(self):
        assert one_factor_partner(0, 1, 0) == 0


class TestOverlapExchange:
    def _run(self, run, parts):
        p = len(parts)

        def prog(comm):
            work = np.sort(parts[comm.rank])
            splitters = find_splitters(comm, work)
            plan = build_exchange_plan(comm, work, splitters)
            return exchange_merge_overlap(comm, work, plan)

        return run(p, prog)

    @pytest.mark.parametrize("p", [2, 3, 5, 8])
    def test_matches_plain_path(self, run, p):
        parts = [make_partition("uniform_u64", 900, rank=r, seed=13) for r in range(p)]
        out = self._run(run, parts)
        check_sorted_output(parts, [r.output for r in out])

    def test_duplicates(self, run):
        parts = [make_partition("duplicates_i64", 700, rank=r, seed=14) for r in range(4)]
        out = self._run(run, parts)
        check_sorted_output(parts, [r.output for r in out])

    def test_overlap_accounting(self, run):
        parts = [make_partition("uniform_u64", 3000, rank=r, seed=15) for r in range(6)]
        out = self._run(run, parts)
        for r in out:
            assert r.merge_cost_total >= r.merge_cost_hidden >= 0
            assert 0.0 <= r.overlap_ratio <= 1.0
            assert r.rounds == 5  # even p: p-1 rounds

    def test_hides_some_merge_cost(self, run):
        parts = [make_partition("uniform_u64", 5000, rank=r, seed=16) for r in range(8)]
        out = self._run(run, parts)
        assert any(r.merge_cost_hidden > 0 for r in out)

    def test_via_sort_config(self, run):
        parts = [make_partition("normal_f64", 1200, rank=r, seed=17) for r in range(5)]

        def prog(comm):
            return histogram_sort(
                comm, parts[comm.rank], config=SortConfig(overlap_exchange=True)
            )

        out = run(5, prog)
        check_sorted_output(parts, [r.output for r in out])
        # merge superstep fused into the exchange
        assert all(r.phases["merge"] == 0.0 for r in out)

    def test_overlap_not_slower_than_plain(self, run):
        parts = [make_partition("uniform_u64", 8000, rank=r, seed=18) for r in range(8)]

        def prog(comm, overlap):
            cfg = SortConfig(overlap_exchange=overlap, merge_strategy="binary_tree")
            return histogram_sort(comm, parts[comm.rank], config=cfg).time

        plain = max(run(8, prog, False))
        overlapped = max(run(8, prog, True))
        assert overlapped <= plain * 1.3  # overlap never catastrophically worse
