"""MPI-layer fault machinery: timeouts, the reliable channel, ULFM ops.

Covers the building blocks :func:`repro.core.resilient.resilient_sort`
stands on — virtual-time receive deadlines, the stop-and-wait ARQ layer
healing drops/duplicates, and the ``revoke``/``agree``/``shrink``
recovery triple — each in isolation, under a deterministic
:class:`FaultPlan`.
"""

from __future__ import annotations

import pytest

from repro.faults import CrashEvent, FaultPlan, FaultSpec
from repro.mpi import (
    CommRevokedError,
    MessageTimeoutError,
    RankFailedError,
    RetryPolicy,
    SPMDError,
    reliable_recv,
    reliable_send,
)
from tests.conftest import spmd

WALL = 60.0


# ------------------------------------------------------------- p2p deadlines


def test_recv_timeout_raises_at_virtual_deadline():
    def prog(comm):
        if comm.rank == 1:
            t0 = comm.clock
            with pytest.raises(MessageTimeoutError):
                comm.recv(source=0, timeout=5e-3)
            # the wait is priced: the clock advanced exactly to the deadline
            return comm.clock - t0
        return None  # rank 0 never sends

    # a timeout only fires under an active fault plan (quiescence arbiter)
    plan = FaultPlan(FaultSpec(), seed=1, size=2)
    waited = spmd(2, prog, faults=plan, timeout=WALL)[1]
    assert waited == pytest.approx(5e-3)


def test_recv_timeout_loses_to_arriving_message():
    def prog(comm):
        if comm.rank == 0:
            comm.send("payload", 1)
        else:
            return comm.recv(source=0, timeout=1.0)
        return None

    plan = FaultPlan(FaultSpec(), seed=1, size=2)
    assert spmd(2, prog, faults=plan, timeout=WALL)[1] == "payload"


# ---------------------------------------------------------- reliable channel


def test_reliable_roundtrip_under_heavy_drops():
    def prog(comm, n):
        peer = 1 - comm.rank
        got = []
        for i in range(n):
            if comm.rank == 0:
                reliable_send(comm, ("msg", i), peer, tag=7)
            else:
                got.append(reliable_recv(comm, peer, tag=7))
        return got

    plan = FaultPlan(FaultSpec(drop_rate=0.3, dup_rate=0.2), seed=11, size=2)
    results = spmd(2, prog, 20, faults=plan, timeout=WALL)
    # in order, exactly once, despite drops of data/acks and duplicates
    assert results[1] == [("msg", i) for i in range(20)]


def test_reliable_send_gives_up_with_typed_error():
    def prog(comm):
        if comm.rank == 0:
            policy = RetryPolicy(max_attempts=2, base_timeout=1e-4)
            reliable_send(comm, "x", 1, tag=3, policy=policy)
        else:
            comm.recv(source=0, tag=99, timeout=50.0)  # never services tag 3
        return None

    plan = FaultPlan(FaultSpec(drop_rate=1.0), seed=2, size=2)
    with pytest.raises(SPMDError) as excinfo:
        spmd(2, prog, faults=plan, timeout=WALL)
    assert isinstance(excinfo.value.failures[0], MessageTimeoutError)
    assert "gave up after 2 attempts" in str(excinfo.value.failures[0])


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_timeout=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=0.5)
    assert RetryPolicy(base_timeout=1e-3, backoff=2.0).timeout(3) == 8e-3


# ------------------------------------------------------- revoke/agree/shrink


def test_agree_is_a_fault_tolerant_and():
    def prog(comm):
        mine = comm.rank != 2
        return comm.agree(mine)

    plan = FaultPlan(FaultSpec(), seed=1, size=4)
    assert spmd(4, prog, faults=plan, timeout=WALL) == [False] * 4

    def prog_all_true(comm):
        return comm.agree(True)

    plan = FaultPlan(FaultSpec(), seed=1, size=4)
    assert spmd(4, prog_all_true, faults=plan, timeout=WALL) == [True] * 4


def test_revoke_hoists_blocked_receiver():
    def prog(comm):
        if comm.rank == 0:
            comm.revoke()
            return comm.agree(True)
        try:
            comm.recv(source=0, tag=5)  # rank 0 will never send  # spmd: ignore[TAG-COLLISION]
        except CommRevokedError:
            return comm.agree(True)
        return "not hoisted"

    plan = FaultPlan(FaultSpec(), seed=1, size=3)
    assert spmd(3, prog, faults=plan, timeout=WALL) == [True] * 3


def test_shrink_after_injected_crash():
    def prog(comm):
        # rank 2 is killed by the plan at its first operation below
        try:
            if comm.rank == 0:
                comm.recv(source=2, timeout=10e-3)
            else:
                comm.send(b"x" * 64, 0)
                comm.recv(source=0, timeout=10e-3)
        except (RankFailedError, MessageTimeoutError, CommRevokedError):
            comm.revoke()
        if not comm.agree(False):
            comm = comm.shrink()
        return (comm.size, tuple(comm.world_ranks))

    plan = FaultPlan(
        FaultSpec(crashes=(CrashEvent(rank=2, at_op=1),)), seed=3, size=4
    )
    results = spmd(4, prog, faults=plan, timeout=WALL)
    live = [r for r in results if r is not None]
    assert len(live) == 3
    assert all(r == (3, (0, 1, 3)) for r in live)


def test_ft_waits_service_the_reliable_channel():
    # Two-generals corner: rank 1's ack for rank 0's *last* message is
    # dropped, and rank 1 immediately enters `agree`.  The rendezvous wait
    # must keep acknowledging retransmissions or rank 0 can never finish.
    def prog(comm):
        if comm.rank == 0:
            attempts = reliable_send(comm, "final", 1, tag=9)
            ok = comm.agree(True)
            return (attempts, ok)
        obj = reliable_recv(comm, 0, tag=9)
        ok = comm.agree(True)
        return (obj, ok)

    # drop every ack-stream event once: seq 0's first ack dies, the
    # retransmission's ack must get through via the ft drain
    class _OneAckDrop(FaultPlan):
        def __init__(self):
            super().__init__(FaultSpec(), seed=1, size=2)
            self._killed = False

        def link_event(self, src, dst, stream=0, event=None):
            ev = super().link_event(src, dst, stream, event)
            if stream == 1 and not self._killed:
                self._killed = True
                return type(ev)(drop=True, duplicate=ev.duplicate,
                                delay_factor=ev.delay_factor)
            return ev

    results = spmd(2, prog, faults=_OneAckDrop(), timeout=WALL)
    assert results[0] == (2, True)  # one retransmission, then agreement
    assert results[1] == ("final", True)
