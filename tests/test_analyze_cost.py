"""Cost lint: symbolic sizes, the four scalability rules, model conformance."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analyze import symbolic as sym
from repro.analyze.astlint import module_from_source
from repro.analyze.costlint import (
    RULE_HANDROLLED,
    RULE_OVERSIZED_REDUCE,
    RULE_P2_TRAFFIC,
    RULE_ROOT_BOTTLENECK,
    check_cost_program,
)
from repro.analyze.conformance import (
    check_conformance,
    main_cost,
    model_traffic,
    static_traffic,
)
from repro.analyze.engine import analyze_program
from repro.analyze.interproc import summarize_module
from repro.analyze.store import AnalysisStore

ROOT = Path(__file__).resolve().parents[1]


def cost_findings(*mods, rule=None):
    """Cost-rule findings over (src, path, modname) triples.

    A single flattened ``(src, path, modname)`` call is accepted too.
    """
    if mods and isinstance(mods[0], str):
        mods = (tuple(mods),)
    summaries = [
        summarize_module(module_from_source(textwrap.dedent(src), path, modname))
        for src, path, modname in mods
    ]
    out = check_cost_program(summaries)
    if rule is None:
        return out
    return [f for f in out if f.rule == rule]


# A run_spmd reference marks `prog` as an entry point, which grounds its
# data parameter at the conventional n/p rank share.
ENTRY = """
import numpy as np
from repro.mpi import run_spmd


def prog(comm, local):
%s

def main():
    return run_spmd(4, prog)
"""


def entry_fixture(body):
    return ENTRY % textwrap.indent(textwrap.dedent(body), "    ")


# ------------------------------------------------------------ symbolic sizes


class TestSymbolic:
    def test_smax_is_upper_bound_not_sum(self):
        a = sym.from_json([[1.0, [["p", 1]]], [-1.0, []]])  # p - 1
        m = sym.smax(a, a)
        assert m == a  # idempotent: max(x, x) = x, not 2x

    def test_smax_takes_coefficient_max(self):
        a = sym.from_json([[2.0, [["p", 1]]]])
        b = sym.from_json([[3.0, [["p", 1]]], [1.0, []]])
        assert sym.smax(a, b) == sym.from_json([[3.0, [["p", 1]]], [1.0, []]])

    def test_smax_unknown_poisons(self):
        assert sym.smax(sym.UNKNOWN, sym.atom("p")) is sym.UNKNOWN

    def test_branch_join_keeps_larger_arm(self):
        # The else-arm `sample = work[:0]` must not zero out the payload
        # inferred on the then-arm (flow-insensitive last-write would).
        hits = cost_findings(
            entry_fixture(
                """
                work = np.sort(local)
                if comm.size > 1 and work.size:
                    sample = work[np.arange(1, comm.size)]
                else:
                    sample = work[:0]
                return comm.allgather(sample)
                """
            ),
            "j.py",
            "j",
            rule=RULE_P2_TRAFFIC,
        )
        assert len(hits) == 1
        assert "p" in hits[0].message

    def test_pad_to_length_concatenate(self):
        # concatenate([flat, np.full(K - flat.size, ...)]) totals K, not
        # |flat| + K — the samplesort/PSRS degenerate-sample idiom.
        hits = cost_findings(
            entry_fixture(
                """
                flat = np.sort(local)
                b = comm.size - 1
                splitters = np.concatenate(
                    [flat, np.full(b - flat.size, 0, dtype=flat.dtype)]
                )
                return comm.allgather(splitters)
                """
            ),
            "pad.py",
            "pad",
            rule=RULE_P2_TRAFFIC,
        )
        # payload is p-1, not n/p: fires the p-growth arm, not the n one
        assert len(hits) == 1
        assert "grows with p" in hits[0].message


# ------------------------------------------------- the four cost rules


class TestRootBottleneck:
    def test_gather_of_local_share_fires(self):
        hits = cost_findings(
            entry_fixture("return comm.gather(np.sort(local), root=0)"),
            "a.py",
            "a",
            rule=RULE_ROOT_BOTTLENECK,
        )
        assert len(hits) == 1
        assert "n/p" in hits[0].message  # the inferred symbolic term
        assert "Θ(n)" in hits[0].message  # the root's materialized volume

    def test_gather_of_scalar_is_near_miss(self):
        assert not cost_findings(
            entry_fixture("return comm.gather(local.size, root=0)"),
            "a.py",
            "a",
            rule=RULE_ROOT_BOTTLENECK,
        )

    def test_gather_of_p_counts_is_clean(self):
        assert not cost_findings(
            entry_fixture(
                """
                counts = np.zeros(comm.size)
                return comm.gather(counts, root=0)
                """
            ),
            "a.py",
            "a",
            rule=RULE_ROOT_BOTTLENECK,
        )

    def test_interprocedural_via_chain(self):
        hits = cost_findings(
            (
                """
                import numpy as np
                from repro.mpi import run_spmd

                def sorted_copy(x):
                    return np.sort(x)

                def prog(comm, local):
                    return comm.gather(sorted_copy(local), root=0)

                def main():
                    return run_spmd(4, prog)
                """,
                "via.py",
                "via",
            ),
            rule=RULE_ROOT_BOTTLENECK,
        )
        assert len(hits) == 1
        assert "via sorted_copy()" in hits[0].message
        assert hits[0].related  # secondary location points at the callee


class TestP2Traffic:
    def test_allgather_of_p_sized_buffer_fires(self):
        hits = cost_findings(
            entry_fixture(
                """
                row = np.zeros(comm.size)
                return comm.allgather(row)
                """
            ),
            "b.py",
            "b",
            rule=RULE_P2_TRAFFIC,
        )
        assert len(hits) == 1
        assert "Θ(p^2)" in hits[0].message

    def test_allgather_of_scalar_is_near_miss(self):
        assert not cost_findings(
            entry_fixture("return comm.allgather(local.size)"),
            "b.py",
            "b",
            rule=RULE_P2_TRAFFIC,
        )

    def test_seeded_p2_handrolled_exchange_regression(self):
        # The acceptance fixture: an alltoall whose rows grow with p —
        # Ω(p²) wire bytes — must be caught with the right symbolic term.
        hits = cost_findings(
            entry_fixture(
                """
                chunks = [np.zeros(comm.size) for _ in range(comm.size)]
                return comm.alltoall(chunks)
                """
            ),
            "c.py",
            "c",
        )
        rules = {f.rule for f in hits}
        assert RULE_P2_TRAFFIC in rules
        (hit,) = [f for f in hits if f.rule == RULE_P2_TRAFFIC]
        assert "p^2" in hit.message  # per-rank row total
        assert "p^3" in hit.message  # total wire volume across ranks


class TestHandrolledCollective:
    def test_blocking_send_loop_fires(self):
        hits = cost_findings(
            entry_fixture(
                """
                for peer in range(comm.size):
                    comm.send(local, dest=peer)
                """
            ),
            "d.py",
            "d",
            rule=RULE_HANDROLLED,
        )
        assert len(hits) == 1
        assert "n/p" in hits[0].message  # elements moved per round

    def test_nonblocking_small_payload_loop_is_near_miss(self):
        # isend of O(1) counts + waitall is latency-bound bookkeeping,
        # not a re-implemented data collective.
        assert not cost_findings(
            entry_fixture(
                """
                reqs = []
                for peer in range(comm.size):
                    reqs.append(comm.isend(local.size, dest=peer))
                for r in reqs:
                    r.wait()
                """
            ),
            "d.py",
            "d",
            rule=RULE_HANDROLLED,
        )

    def test_nonblocking_big_payload_loop_fires(self):
        hits = cost_findings(
            entry_fixture(
                """
                reqs = []
                for peer in range(comm.size):
                    reqs.append(comm.isend(local, dest=peer))
                for r in reqs:
                    r.wait()
                """
            ),
            "d.py",
            "d",
            rule=RULE_HANDROLLED,
        )
        assert len(hits) == 1
        assert "in-flight volume" in hits[0].message

    def test_constant_peer_loop_is_clean(self):
        assert not cost_findings(
            entry_fixture(
                """
                for peer in range(2):
                    comm.send(local, dest=peer)
                """
            ),
            "d.py",
            "d",
            rule=RULE_HANDROLLED,
        )


class TestOversizedReduce:
    def test_allreduce_of_data_fires(self):
        hits = cost_findings(
            entry_fixture("return comm.allreduce(local)"),
            "e.py",
            "e",
            rule=RULE_OVERSIZED_REDUCE,
        )
        assert len(hits) == 1
        assert "n/p" in hits[0].message

    def test_allreduce_of_histogram_is_near_miss(self):
        assert not cost_findings(
            entry_fixture(
                """
                hist = np.zeros(2 * (comm.size - 1))
                return comm.allreduce(hist)
                """
            ),
            "e.py",
            "e",
            rule=RULE_OVERSIZED_REDUCE,
        )


# ------------------------------------------------------------- suppression


class TestSuppressionAndStore:
    def fixture(self, tmp_path, body):
        f = tmp_path / "prog.py"
        f.write_text(entry_fixture(body), encoding="utf-8")
        return f

    def test_cost_finding_suppressible(self, tmp_path):
        self.fixture(
            tmp_path,
            """
            row = np.zeros(comm.size)
            return comm.allgather(row)  # spmd: ignore[P2-TRAFFIC]
            """,
        )
        assert analyze_program([tmp_path]).findings == []

    def test_stale_suppression_reported(self, tmp_path):
        self.fixture(
            tmp_path,
            "return comm.allgather(local.size)  # spmd: ignore[P2-TRAFFIC]",
        )
        (f,) = analyze_program([tmp_path]).findings
        assert f.rule == "SPMD-STALE-SUPPRESSION"
        assert "suppresses nothing" in f.message

    def test_stale_suppression_not_self_suppressible(self, tmp_path):
        self.fixture(
            tmp_path,
            "return comm.allgather(local.size)"
            "  # spmd: ignore[P2-TRAFFIC, STALE-SUPPRESSION]",
        )
        (f,) = analyze_program([tmp_path]).findings
        assert f.rule == "SPMD-STALE-SUPPRESSION"

    def test_warm_store_byte_parity_with_cost_rules(self, tmp_path):
        self.fixture(
            tmp_path,
            """
            merged = comm.gather(np.sort(local), root=0)
            return comm.allreduce(local)
            """,
        )
        store_a = tmp_path / "store_a.json"
        store_b = tmp_path / "store_b.json"
        paths = [tmp_path / "prog.py"]

        sa = AnalysisStore(store_a)
        cold = analyze_program(paths, store=sa)
        assert cold.stats.parsed == 1
        assert {f.rule for f in cold.findings} == {
            RULE_ROOT_BOTTLENECK,
            RULE_OVERSIZED_REDUCE,
        }

        warm = analyze_program(paths, store=AnalysisStore(store_a))
        assert warm.stats.parsed == 0 and warm.stats.reused == 1
        assert warm.findings == cold.findings

        analyze_program(paths, store=AnalysisStore(store_b))
        assert store_a.read_bytes() == store_b.read_bytes()


# ---------------------------------------------------------- conformance


class TestConformance:
    def test_histsort_three_way_agreement(self):
        report = check_conformance("histsort", p=4, n=4096)
        assert report.ok
        phases = {c.phase for c in report.comparisons}
        assert {"splitting", "exchange"} <= phases

    def test_samplesort_three_way_agreement(self):
        report = check_conformance("samplesort", p=4, n=4096)
        assert report.ok

    def test_exchange_volume_is_exact(self):
        report = check_conformance("psrs", p=4, n=4096)
        (ex,) = [c for c in report.comparisons if c.phase == "exchange"]
        assert ex.static == ex.modelled == ex.measured == 4096 * 8

    def test_disagreement_fails_with_attribution(self):
        # An absurdly tight tolerance turns the static/measured slack of
        # real phases into a reported disagreement with static-term blame.
        report = check_conformance("histsort", p=8, n=8192, tolerance=1.01)
        assert not report.ok
        bad = [c for c in report.comparisons if not c.ok and not c.skipped]
        assert bad and any(c.attribution for c in bad)

    def test_static_matches_predict_histsort_asymptotics(self):
        # predict_histsort prices `rounds` allreduces of 2(p-1)*8 bytes in
        # the splitting phase; the statically derived splitting traffic
        # must scale the same way: linear in rounds, ~quadratic in p once
        # the per-round term dominates.
        def split(p, rounds):
            phase_bytes, _, _ = static_traffic("histsort", p, 1 << 16, rounds)
            return phase_bytes["splitting"]

        assert split(8, 40) / split(8, 20) == pytest.approx(2.0, rel=0.15)
        # model side: the same doubling, by construction of the formula
        assert model_traffic("histsort", 8, 1 << 16, 40)["splitting"] / (
            model_traffic("histsort", 8, 1 << 16, 20)["splitting"]
        ) == pytest.approx(2.0, rel=0.05)
        # rounds fixed, p doubled: the p * rounds * 2(p-1) * 8 term
        # dominates, so traffic grows ~4x on both sides
        assert split(32, 20) / split(16, 20) == pytest.approx(4.0, rel=0.25)

    def test_static_matches_predict_samplesort_asymptotics(self):
        # predict_samplesort gathers `oversample` keys per rank and
        # broadcasts p-1 splitters: sampling traffic is linear in p,
        # exchange is linear in n, independent of the other.
        def phases(p, n):
            phase_bytes, _, _ = static_traffic("samplesort", p, n, 1)
            return phase_bytes

        a, b = phases(8, 1 << 14), phases(16, 1 << 14)
        assert b["sampling"] / a["sampling"] == pytest.approx(2.0, rel=0.05)
        assert b["exchange"] == a["exchange"]
        c = phases(8, 1 << 15)
        assert c["exchange"] / a["exchange"] == pytest.approx(2.0, rel=0.01)
        assert c["sampling"] == a["sampling"]


# ------------------------------------------------------------------- CLI


def run_cli(*args, cwd=ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analyze", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


class TestCostCli:
    def test_cost_subcommand_exits_clean(self):
        out = run_cli("cost", "--algo", "samplesort", "--p", "4", "--n", "2048")
        assert out.returncode == 0, out.stdout + out.stderr
        assert "samplesort" in out.stdout
        assert "exchange" in out.stdout

    def test_cost_help_documents_exit_codes(self):
        out = run_cli("cost", "--help")
        assert out.returncode == 0
        assert "Exit codes" in out.stdout

    def test_main_help_mentions_cost_and_exit_codes(self):
        out = run_cli("--help")
        assert out.returncode == 0
        assert "cost" in out.stdout
        assert "Exit codes" in out.stdout

    def test_cost_rejects_unknown_algo(self):
        out = run_cli("cost", "--algo", "nope")
        assert out.returncode == 2

    def test_main_cost_callable_directly(self):
        assert main_cost(["--algo", "psrs", "--p", "4", "--n", "2048"]) == 0

    def test_baseline_update_alias(self, tmp_path):
        fixture = tmp_path / "prog.py"
        fixture.write_text(
            entry_fixture("return comm.gather(np.sort(local), root=0)"),
            encoding="utf-8",
        )
        baseline = tmp_path / "baseline.json"
        out = run_cli(
            str(fixture),
            "--no-store",
            "--baseline",
            "update",
            "--baseline-file",
            str(baseline),
        )
        assert out.returncode == 0, out.stdout + out.stderr
        assert baseline.exists()
        out = run_cli(
            str(fixture),
            "--no-store",
            "--baseline",
            "check",
            "--baseline-file",
            str(baseline),
        )
        assert out.returncode == 0, out.stdout + out.stderr

    def test_baseline_update_excludes_stale_suppressions(self, tmp_path):
        fixture = tmp_path / "prog.py"
        fixture.write_text(
            entry_fixture(
                "return comm.allgather(local.size)  # spmd: ignore[P2-TRAFFIC]"
            ),
            encoding="utf-8",
        )
        baseline = tmp_path / "baseline.json"
        out = run_cli(
            str(fixture),
            "--no-store",
            "--baseline",
            "update",
            "--baseline-file",
            str(baseline),
        )
        assert out.returncode == 0
        assert json.loads(baseline.read_text())["findings"] == []


# -------------------------------------------------------------- catalogue


class TestSarifCatalogue:
    def test_all_rules_have_help_and_docs(self):
        from repro.analyze.sarif import to_sarif

        rules = to_sarif([])["runs"][0]["tool"]["driver"]["rules"]
        assert len(rules) == 18  # 16 catalogue + parse error + stale
        for r in rules:
            assert r["helpUri"].startswith("DESIGN.md#spmd-"), r["id"]
            assert r["fullDescription"]["markdown"], r["id"]
        ids = {r["id"] for r in rules}
        assert {
            RULE_ROOT_BOTTLENECK,
            RULE_P2_TRAFFIC,
            RULE_HANDROLLED,
            RULE_OVERSIZED_REDUCE,
            "SPMD-PARSE-ERROR",
            "SPMD-STALE-SUPPRESSION",
        } <= ids
