"""Shared-memory simulator: scheduler, NUMA model, merge-sort models."""

import numpy as np
import pytest

from repro.machine import single_node
from repro.smp import (
    NumaModel,
    Task,
    WorkStealingSimulator,
    kway_merge_time,
    parallel_mergesort_time,
)


@pytest.fixture
def machine():
    return single_node()


class TestWorkStealingSimulator:
    def _sim(self, threads=2, domains=(0, 0)):
        return WorkStealingSimulator(list(domains), lambda a, b: 1.0 if a == b else 2.0)

    def test_single_task(self):
        sim = self._sim(1, (0,))
        res = sim.run([Task(cost=1.0)])
        assert res.makespan == pytest.approx(1.0 + sim.spawn_overhead)

    def test_independent_tasks_parallelize(self):
        sim = self._sim(2, (0, 0))
        res = sim.run([Task(cost=1.0), Task(cost=1.0)])
        assert res.makespan < 1.5

    def test_chain_serializes(self):
        sim = self._sim(2, (0, 0))
        res = sim.run([Task(cost=1.0), Task(cost=1.0, deps=(0,))])
        assert res.makespan >= 2.0

    def test_diamond_dag(self):
        sim = self._sim(2, (0, 0))
        tasks = [
            Task(cost=1.0),
            Task(cost=1.0, deps=(0,)),
            Task(cost=1.0, deps=(0,)),
            Task(cost=1.0, deps=(1, 2)),
        ]
        res = sim.run(tasks)
        assert 3.0 <= res.makespan < 4.0

    def test_remote_penalty_applied(self):
        sim = WorkStealingSimulator([0], lambda a, b: 1.0 if a == b else 3.0, spawn_overhead=0.0)
        res = sim.run([Task(cost=1.0, numa=1)])
        assert res.makespan == pytest.approx(3.0)
        assert res.remote_executions == 1

    def test_locality_preference(self):
        # two ready tasks, two threads in different domains: each takes its own
        sim = WorkStealingSimulator([0, 1], lambda a, b: 1.0 if a == b else 10.0, spawn_overhead=0.0)
        res = sim.run([Task(cost=1.0, numa=1), Task(cost=1.0, numa=0)])
        assert res.remote_executions == 0
        assert res.makespan == pytest.approx(1.0)

    def test_throughput_scaling(self):
        slow = WorkStealingSimulator([0], lambda a, b: 1.0, spawn_overhead=0.0, throughput=0.5)
        res = slow.run([Task(cost=1.0)])
        assert res.makespan == pytest.approx(2.0)

    def test_cycle_detection(self):
        sim = self._sim()
        with pytest.raises(ValueError):
            sim.run([Task(cost=1.0, deps=(1,)), Task(cost=1.0, deps=(0,))])

    def test_unknown_dep(self):
        sim = self._sim()
        with pytest.raises(ValueError):
            sim.run([Task(cost=1.0, deps=(5,))])

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Task(cost=-1.0)

    def test_empty_dag(self):
        res = self._sim().run([])
        assert res.makespan == 0.0

    def test_utilization_bounds(self):
        sim = self._sim(4, (0, 0, 0, 0))
        res = sim.run([Task(cost=1.0) for _ in range(16)])
        assert 0.5 < res.utilization <= 1.0


class TestNumaModel:
    def test_local_penalty_is_one(self, machine):
        numa = NumaModel(machine, 4)
        assert numa.penalty(2, 2) == 1.0

    def test_cross_socket_worse_than_same_socket(self, machine):
        numa = NumaModel(machine, 4)
        same_socket = numa.penalty(0, 1)
        cross_socket = numa.penalty(0, 2)
        assert 1.0 <= same_socket < cross_socket

    def test_thread_domains_fill_in_order(self, machine):
        numa = NumaModel(machine, 2)
        doms = numa.thread_domains(10, smt=1)
        assert doms[:7] == [0] * 7
        assert doms[7:] == [1] * 3

    def test_thread_domains_smt(self, machine):
        numa = NumaModel(machine, 1)
        assert len(numa.thread_domains(14, smt=2)) == 14

    def test_too_many_threads(self, machine):
        numa = NumaModel(machine, 1)
        with pytest.raises(ValueError):
            numa.thread_domains(8, smt=1)

    def test_domain_of_block(self, machine):
        numa = NumaModel(machine, 4)
        assert numa.domain_of_block(0, 8) == 0
        assert numa.domain_of_block(7, 8) == 3

    def test_active_domain_validation(self, machine):
        with pytest.raises(ValueError):
            NumaModel(machine, 5)


class TestMergesortModels:
    def test_more_cores_faster_on_one_domain_pair(self, machine):
        n = 1 << 24
        t7 = parallel_mergesort_time(machine, n, cores=7, active_domains=1).seconds
        t28 = parallel_mergesort_time(machine, n, cores=28, active_domains=4).seconds
        assert t28 < t7

    def test_openmp_slower_than_tbb(self, machine):
        n = 1 << 24
        for cores, doms in [(7, 1), (28, 4)]:
            tbb = parallel_mergesort_time(machine, n, cores=cores, active_domains=doms, runtime="tbb").seconds
            omp = parallel_mergesort_time(machine, n, cores=cores, active_domains=doms, runtime="openmp").seconds
            assert omp > tbb

    def test_numa_crossing_costs(self, machine):
        n = 1 << 24
        local = parallel_mergesort_time(machine, n, cores=14, active_domains=2).seconds
        # same cores but data over 2 domains vs hypothetical single domain at
        # 14 cores is impossible (7 cores/domain), so compare per-core rates
        one_dom = parallel_mergesort_time(machine, n, cores=7, active_domains=1).seconds
        assert local > one_dom / 2  # scaling is sub-linear across domains

    def test_invalid_runtime(self, machine):
        with pytest.raises(ValueError):
            parallel_mergesort_time(machine, 100, cores=7, active_domains=1, runtime="x")

    def test_invalid_n(self, machine):
        with pytest.raises(ValueError):
            parallel_mergesort_time(machine, 0, cores=7, active_domains=1)

    def test_kway_strategies_positive(self, machine):
        n = 1 << 22
        for strategy in ("binary_tree", "tournament", "sort"):
            run = kway_merge_time(machine, n, 16, threads=8, strategy=strategy)
            assert run.seconds > 0

    def test_kway_sort_wins_many_small_chunks_many_threads(self, machine):
        n = 1 << 30
        sort = kway_merge_time(machine, n, 1024, threads=28, strategy="sort", smt=2).seconds
        tree = kway_merge_time(machine, n, 1024, threads=28, strategy="binary_tree", smt=2).seconds
        tourney = kway_merge_time(machine, n, 1024, threads=28, strategy="tournament", smt=2).seconds
        assert sort < tree and sort < tourney

    def test_kway_merge_wins_few_large_chunks(self, machine):
        n = 1 << 30
        sort = kway_merge_time(machine, n, 4, threads=2, strategy="sort", smt=2).seconds
        tourney = kway_merge_time(machine, n, 4, threads=2, strategy="tournament", smt=2).seconds
        assert tourney < sort

    def test_kway_invalid(self, machine):
        with pytest.raises(ValueError):
            kway_merge_time(machine, 0, 4, threads=2, strategy="sort")
        with pytest.raises(ValueError):
            kway_merge_time(machine, 10, 4, threads=2, strategy="bogus")
