"""Runtime lifecycle: split/dup, failure propagation, determinism."""

import numpy as np
import pytest

from repro.mpi import Runtime, SPMDError, run_spmd


class TestSplit:
    def test_split_by_parity(self, run):
        def prog(comm):
            sub = comm.split(comm.rank % 2, key=comm.rank)
            return sub.size, sub.rank, sub.allreduce(comm.rank)

        out = run(6, prog)
        # evens: 0,2,4 -> sum 6 ; odds: 1,3,5 -> sum 9
        assert out[0] == (3, 0, 6)
        assert out[1] == (3, 0, 9)
        assert out[4] == (3, 2, 6)

    def test_split_key_reorders(self, run):
        def prog(comm):
            sub = comm.split(0, key=-comm.rank)  # reversed order
            return sub.rank

        assert run(4, prog) == [3, 2, 1, 0]

    def test_split_undefined_color(self, run):
        def prog(comm):
            sub = comm.split(None if comm.rank == 0 else 1, key=comm.rank)
            return None if sub is None else sub.size

        assert run(3, prog) == [None, 2, 2]

    def test_split_subcomm_isolated_p2p(self, run):
        def prog(comm):
            sub = comm.split(comm.rank // 2, key=comm.rank)
            # p2p within the subcommunicator uses subgroup ranks
            peer = 1 - sub.rank
            return sub.sendrecv(comm.rank, dest=peer)

        out = run(4, prog)
        assert out == [1, 0, 3, 2]

    def test_dup_preserves_layout(self, run):
        def prog(comm):
            d = comm.dup()
            return d.rank == comm.rank and d.size == comm.size

        assert all(run(4, prog))

    def test_world_ranks_mapping(self, run):
        def prog(comm):
            sub = comm.split(comm.rank % 2, key=comm.rank)
            return sub.world_ranks

        out = run(4, prog)
        assert out[0] == [0, 2]
        assert out[1] == [1, 3]


class TestFailures:
    def test_exception_propagates_with_rank(self, run):
        def prog(comm):
            if comm.rank == 1:
                raise KeyError("kaboom")
            comm.barrier()  # spmd: ignore[DIV-COLLECTIVE]

        with pytest.raises(SPMDError) as ei:
            run(3, prog)
        assert 1 in ei.value.failures
        assert isinstance(ei.value.failures[1], KeyError)

    def test_failure_while_others_wait_on_recv(self, run):
        def prog(comm):
            if comm.rank == 0:
                raise ValueError("no message for you")
            comm.recv(source=0)  # would deadlock without abort

        with pytest.raises(SPMDError):
            run(2, prog)

    def test_multiple_failures_collected(self, run):
        def prog(comm):
            raise RuntimeError(f"rank {comm.rank}")

        with pytest.raises(SPMDError) as ei:
            run(3, prog)
        assert set(ei.value.failures) == {0, 1, 2}

    def test_failure_inside_subcommunicator(self, run):
        def prog(comm):
            sub = comm.split(comm.rank % 2, key=comm.rank)
            if comm.rank == 0:
                raise ValueError("boom")
            sub.barrier()  # spmd: ignore[DIV-COLLECTIVE]
            comm.barrier()  # spmd: ignore[DIV-COLLECTIVE]

        with pytest.raises(SPMDError):
            run(4, prog)


class TestRuntimeObject:
    def test_results_in_rank_order(self):
        out = run_spmd(5, lambda comm: comm.rank * 10)
        assert out == [0, 10, 20, 30, 40]

    def test_per_rank_args(self):
        out = run_spmd(
            3, lambda comm, a, b: (a, b),
            per_rank_args=[("a", 0), ("b", 1), ("c", 2)],
        )
        assert out == [("a", 0), ("b", 1), ("c", 2)]

    def test_per_rank_args_wrong_length(self):
        rt = Runtime(2)
        with pytest.raises(ValueError):
            rt.run(lambda comm: None, per_rank_args=[()])

    def test_common_args(self):
        out = run_spmd(2, lambda comm, x: x + comm.rank, 100)
        assert out == [100, 101]

    def test_reset_clears_clocks(self):
        rt = Runtime(2)
        rt.run(lambda comm: comm.compute(1.0))
        assert rt.elapsed() >= 1.0
        rt.reset()
        assert rt.elapsed() == 0.0

    def test_size_validation(self):
        with pytest.raises(ValueError):
            Runtime(0)

    def test_invalid_rank_handle(self):
        rt = Runtime(2)
        with pytest.raises(IndexError):
            rt.comm(2)

    def test_return_runtime(self):
        out, rt = run_spmd(2, lambda comm: comm.rank, return_runtime=True)
        assert out == [0, 1]
        assert rt.size == 2


class TestDeterminism:
    def test_virtual_time_deterministic(self):
        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            local = rng.integers(0, 1000, 500)
            total = comm.allreduce(int(local.sum()))
            comm.alltoallv([local[i::comm.size].copy() for i in range(comm.size)])
            return total

        runs = []
        for _ in range(2):
            out, rt = run_spmd(4, prog, return_runtime=True)
            runs.append((out, rt.elapsed()))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == pytest.approx(runs[1][1], rel=0, abs=0)

    def test_larger_world(self, run):
        def prog(comm):
            return comm.allreduce(1)

        assert run(32, prog) == [32] * 32
