"""Analytic model: predictions, calibration, agreement with execution."""

import numpy as np
import pytest

from repro.bench.harness import run_sort_trial
from repro.machine import supermuc_phase2
from repro.model import (
    PhasePrediction,
    fit_round_count,
    predict_histsort,
    predict_hss,
    validate_model,
)


@pytest.fixture(scope="module")
def machine():
    return supermuc_phase2()


class TestPredictHistsort:
    def test_phases_positive(self, machine):
        pred = predict_histsort(machine, 2**28, 256, ranks_per_node=16, rounds=30)
        for v in pred.as_dict().values():
            assert v > 0
        assert pred.total == pytest.approx(sum(pred.as_dict().values()))

    def test_strong_scaling_speedup(self, machine):
        t1 = predict_histsort(machine, 2**30, 28, ranks_per_node=28, rounds=30).total
        t8 = predict_histsort(machine, 2**30, 224, ranks_per_node=28, rounds=30).total
        assert t8 < t1
        assert t1 / t8 > 4  # decent speedup at 8 nodes

    def test_splitting_grows_with_p(self, machine):
        s1 = predict_histsort(machine, 2**30, 28, ranks_per_node=28, rounds=30).splitting
        s128 = predict_histsort(machine, 2**30, 3584, ranks_per_node=28, rounds=30).splitting
        assert s128 > s1 * 10

    def test_rounds_scale_splitting_linearly(self, machine):
        a = predict_histsort(machine, 2**28, 256, ranks_per_node=16, rounds=10).splitting
        b = predict_histsort(machine, 2**28, 256, ranks_per_node=16, rounds=30).splitting
        assert b / a == pytest.approx(3.0, rel=0.15)

    def test_merge_strategy_changes_merge_phase(self, machine):
        sort = predict_histsort(machine, 2**28, 64, ranks_per_node=16, rounds=20)
        tree = predict_histsort(
            machine, 2**28, 64, ranks_per_node=16, rounds=20, merge_strategy="binary_tree"
        )
        assert tree.merge < sort.merge

    def test_shm_ablation_direction(self, machine):
        on = predict_histsort(machine, 2**28, 28, ranks_per_node=28, rounds=20, use_shm=True)
        off = predict_histsort(machine, 2**28, 28, ranks_per_node=28, rounds=20, use_shm=False)
        assert off.exchange > on.exchange

    def test_single_rank(self, machine):
        pred = predict_histsort(machine, 2**20, 1, ranks_per_node=1, rounds=0)
        assert pred.total > 0

    def test_validation(self, machine):
        with pytest.raises(ValueError):
            predict_histsort(machine, 100, 0, ranks_per_node=1, rounds=1)


class TestPredictHss:
    def test_splitting_dominated_by_rounds(self, machine):
        a = predict_hss(machine, 2**28, 256, ranks_per_node=16, rounds=5, cand_per_round=2048)
        b = predict_hss(machine, 2**28, 256, ranks_per_node=16, rounds=25, cand_per_round=2048)
        assert b.splitting > a.splitting * 3
        assert a.local_sort == b.local_sort

    def test_candidate_volume_matters(self, machine):
        small = predict_hss(machine, 2**28, 256, ranks_per_node=16, rounds=10, cand_per_round=256)
        big = predict_hss(machine, 2**28, 256, ranks_per_node=16, rounds=10, cand_per_round=65536)
        assert big.splitting > small.splitting


class TestCalibration:
    def test_fit_round_count(self):
        class R:
            def __init__(self, rounds):
                self.rounds = rounds

        assert fit_round_count([R(10), R(20), R(12)]) == 12
        with pytest.raises(ValueError):
            fit_round_count([])

    def test_model_matches_execution_within_factor(self, machine):
        """Model and runtime share the cost model: totals agree closely."""
        from repro.core import histogram_sort
        from repro.data import make_partition
        from repro.mpi import run_spmd

        p, n_per_rank = 32, 4096

        def prog(comm):
            local = make_partition("uniform_u64", n_per_rank, rank=comm.rank, seed=9)
            return histogram_sort(comm, local)

        results = run_spmd(p, prog, machine=machine, ranks_per_node=16)
        fit = validate_model(
            machine,
            results,
            n_total=p * n_per_rank,
            p=p,
            ranks_per_node=16,
        )
        assert 0.4 < fit.ratio < 2.5, fit
