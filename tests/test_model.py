"""Analytic model: predictions, calibration, agreement with execution."""

import numpy as np
import pytest

from repro.bench.harness import run_sort_trial
from repro.machine import supermuc_phase2
from repro.model import (
    PhasePrediction,
    fit_round_count,
    fit_time_scale,
    predict_histsort,
    predict_hss,
    predict_samplesort,
    validate_model,
)


@pytest.fixture(scope="module")
def machine():
    return supermuc_phase2()


class TestPredictHistsort:
    def test_phases_positive(self, machine):
        pred = predict_histsort(machine, 2**28, 256, ranks_per_node=16, rounds=30)
        for v in pred.as_dict().values():
            assert v > 0
        assert pred.total == pytest.approx(sum(pred.as_dict().values()))

    def test_strong_scaling_speedup(self, machine):
        t1 = predict_histsort(machine, 2**30, 28, ranks_per_node=28, rounds=30).total
        t8 = predict_histsort(machine, 2**30, 224, ranks_per_node=28, rounds=30).total
        assert t8 < t1
        assert t1 / t8 > 4  # decent speedup at 8 nodes

    def test_splitting_grows_with_p(self, machine):
        s1 = predict_histsort(machine, 2**30, 28, ranks_per_node=28, rounds=30).splitting
        s128 = predict_histsort(machine, 2**30, 3584, ranks_per_node=28, rounds=30).splitting
        assert s128 > s1 * 10

    def test_rounds_scale_splitting_linearly(self, machine):
        a = predict_histsort(machine, 2**28, 256, ranks_per_node=16, rounds=10).splitting
        b = predict_histsort(machine, 2**28, 256, ranks_per_node=16, rounds=30).splitting
        assert b / a == pytest.approx(3.0, rel=0.15)

    def test_merge_strategy_changes_merge_phase(self, machine):
        sort = predict_histsort(machine, 2**28, 64, ranks_per_node=16, rounds=20)
        tree = predict_histsort(
            machine, 2**28, 64, ranks_per_node=16, rounds=20, merge_strategy="binary_tree"
        )
        assert tree.merge < sort.merge

    def test_shm_ablation_direction(self, machine):
        on = predict_histsort(machine, 2**28, 28, ranks_per_node=28, rounds=20, use_shm=True)
        off = predict_histsort(machine, 2**28, 28, ranks_per_node=28, rounds=20, use_shm=False)
        assert off.exchange > on.exchange

    def test_single_rank(self, machine):
        pred = predict_histsort(machine, 2**20, 1, ranks_per_node=1, rounds=0)
        assert pred.total > 0

    def test_fewer_ranks_than_node_cores(self, machine):
        # regression: ranks_per_node > p drove intra_frac above 1 and made
        # the modelled exchange time negative
        pred = predict_histsort(machine, 2**16, 4, ranks_per_node=28, rounds=8)
        assert pred.exchange > 0
        for v in pred.as_dict().values():
            assert v >= 0

    def test_validation(self, machine):
        with pytest.raises(ValueError):
            predict_histsort(machine, 100, 0, ranks_per_node=1, rounds=1)


class TestPredictHss:
    def test_splitting_dominated_by_rounds(self, machine):
        a = predict_hss(machine, 2**28, 256, ranks_per_node=16, rounds=5, cand_per_round=2048)
        b = predict_hss(machine, 2**28, 256, ranks_per_node=16, rounds=25, cand_per_round=2048)
        assert b.splitting > a.splitting * 3
        assert a.local_sort == b.local_sort

    def test_candidate_volume_matters(self, machine):
        small = predict_hss(machine, 2**28, 256, ranks_per_node=16, rounds=10, cand_per_round=256)
        big = predict_hss(machine, 2**28, 256, ranks_per_node=16, rounds=10, cand_per_round=65536)
        assert big.splitting > small.splitting


class TestPredictSamplesort:
    def test_splitting_is_one_shot(self, machine):
        ss = predict_samplesort(machine, 2**28, 256, ranks_per_node=16)
        hist = predict_histsort(machine, 2**28, 256, ranks_per_node=16, rounds=20)
        assert 0 < ss.splitting < hist.splitting
        assert ss.local_sort == hist.local_sort

    def test_oversampling_costs(self, machine):
        lean = predict_samplesort(machine, 2**28, 256, ranks_per_node=16, oversample=8)
        rich = predict_samplesort(machine, 2**28, 256, ranks_per_node=16, oversample=4096)
        assert rich.splitting > lean.splitting


class _R:
    def __init__(self, rounds):
        self.rounds = rounds


class TestCalibration:
    def test_fit_round_count(self):
        assert fit_round_count([_R(10), _R(20), _R(12)]) == 12
        with pytest.raises(ValueError):
            fit_round_count([])

    def test_fit_round_count_rounds_half_up(self):
        # regression: int(median) used to truncate the even-count midpoint,
        # e.g. median([1, 2, 3, 4]) = 2.5 silently became 2 rounds
        assert fit_round_count([_R(1), _R(2), _R(3), _R(4)]) == 3
        assert fit_round_count([_R(10), _R(11)]) == 11
        assert fit_round_count([_R(7), _R(7)]) == 7

    def test_fit_round_count_accepts_harness_records(self, machine):
        # the Protocol contract: anything with .rounds works, including
        # bench-harness TrialResult objects
        trial = run_sort_trial(4, 512, machine=machine, ranks_per_node=4)
        assert fit_round_count([trial, trial]) == trial.rounds

    def test_fit_time_scale(self):
        assert fit_time_scale([2.0, 4.0, 20.0], [1.0, 2.0, 2.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            fit_time_scale([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_time_scale([], [])

    def test_model_matches_execution_within_factor(self, machine):
        """Model and runtime share the cost model: totals agree closely."""
        from repro.core import histogram_sort
        from repro.data import make_partition
        from repro.mpi import run_spmd

        p, n_per_rank = 32, 4096

        def prog(comm):
            local = make_partition("uniform_u64", n_per_rank, rank=comm.rank, seed=9)
            return histogram_sort(comm, local)

        results = run_spmd(p, prog, machine=machine, ranks_per_node=16)
        fit = validate_model(
            machine,
            results,
            n_total=p * n_per_rank,
            p=p,
            ranks_per_node=16,
        )
        assert 0.4 < fit.ratio < 2.5, fit
