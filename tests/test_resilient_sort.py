"""End-to-end fault-tolerant histogram sort (``SortConfig(resilient=True)``).

The contract under a deterministic :class:`FaultPlan`: a verified sort of
the *surviving* ranks' data, or a typed error — and for a fixed seed, a
bit-identical virtual-time schedule on every replay.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SortConfig
from repro.core.histsort import histogram_sort
from repro.faults import CrashEvent, FaultPlan, FaultSpec
from repro.faults.chaos import ChaosCase, run_case, sweep
from repro.mpi import Runtime

WALL = 120.0


def _sorter(comm, n, seed=77):
    rng = np.random.default_rng(seed + comm.rank)
    data = rng.integers(0, 1 << 62, n, dtype=np.int64)
    res = histogram_sort(comm, data, SortConfig(resilient=True))
    out = res.output
    assert np.all(out[:-1] <= out[1:])
    return (int(out.size), res.attempts, res.survivors, res.failed)


def _run(p, plan, n=64, check=False):
    rt = Runtime(p, faults=plan, check=check)
    results = rt.run(_sorter, args=(n,), timeout=WALL)
    return rt, [r for r in results if r is not None]


def test_faultless_run_is_single_attempt():
    rt, live = _run(4, None)
    assert len(live) == 4
    assert all(r[1] == 1 and r[2] == (0, 1, 2, 3) and r[3] == () for r in live)
    assert sum(r[0] for r in live) == 4 * 64


def test_drops_are_healed_without_recovery_epochs():
    plan = FaultPlan(FaultSpec(drop_rate=0.15, dup_rate=0.1), seed=5, size=4)
    rt, live = _run(4, plan)
    assert len(live) == 4
    assert all(r[1] == 1 for r in live)  # retransmission, not shrink/retry
    assert sum(r[0] for r in live) == 4 * 64
    assert rt.fault_stats.dropped > 0


def test_crash_recovery_completes_on_survivors():
    plan = FaultPlan(
        FaultSpec(drop_rate=0.05, crashes=(CrashEvent(rank=1, at_op=40),)),
        seed=9, size=4,
    )
    rt, live = _run(4, plan)
    assert rt.fault_stats.crashed == [1]
    assert len(live) == 3
    assert all(r[2] == (0, 2, 3) and r[3] == (1,) for r in live)
    # conservation over survivors: the dead rank's elements are gone, all
    # surviving input elements are accounted for exactly once
    assert sum(r[0] for r in live) == 3 * 64
    assert all(r[1] >= 2 for r in live)  # at least one recovery epoch


def test_same_seed_is_bit_identical():
    def once():
        plan = FaultPlan(
            FaultSpec(drop_rate=0.2, dup_rate=0.1, delay_rate=0.1,
                      crash_ranks=1, crash_op_range=(10, 80)),
            seed=13, size=4,
        )
        rt, live = _run(4, plan)
        return (rt.elapsed(), np.array(rt.clocks),
                rt.fault_stats.summary(), live)

    t_a, clocks_a, stats_a, live_a = once()
    t_b, clocks_b, stats_b, live_b = once()
    assert t_a == t_b  # exact float equality, not approx
    assert np.array_equal(clocks_a, clocks_b)
    assert stats_a == stats_b
    assert live_a == live_b


def test_inert_plan_matches_plain_run_bit_for_bit():
    def clocks(**kw):
        rt = Runtime(4, **kw)
        rt.run(_sorter, args=(64,), timeout=WALL)
        return np.array(rt.clocks)

    assert np.array_equal(clocks(), clocks(faults=None, check=True))


def test_checker_stays_quiet_under_faults():
    plan = lambda: FaultPlan(  # noqa: E731 - fresh plan per run
        FaultSpec(drop_rate=0.2, dup_rate=0.1, crash_ranks=1,
                  crash_op_range=(10, 80)),
        seed=21, size=4,
    )
    rt_plain, live_plain = _run(4, plan(), check=False)
    rt_check, live_check = _run(4, plan(), check=True)
    # no false leak/deadlock reports, and checking must not perturb the
    # virtual schedule
    assert rt_plain.elapsed() == rt_check.elapsed()
    assert live_plain == live_check


def test_mini_chaos_sweep_contract():
    cases = [
        ChaosCase(seed=s, size=4, drop_rate=d, crash_ranks=1,
                  n_per_rank=48, check=check)
        for s in (1, 2, 3)
        for d in (0.05, 0.2)
        for check in (False, True)
    ]
    outcomes = sweep(cases, wall_timeout=WALL, determinism=True,
                     verbose=False)
    bad = [o for o in outcomes if not o.ok]
    assert not bad, [f"{o.case}: {o.kind} ({o.detail})" for o in bad]


def test_run_case_classifies_success():
    out = run_case(ChaosCase(seed=4, size=4, drop_rate=0.1, crash_ranks=0,
                             n_per_rank=32, check=False),
                   wall_timeout=WALL)
    assert out.ok and out.kind == "sorted"
    assert out.makespan > 0.0
