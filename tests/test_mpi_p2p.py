"""Point-to-point semantics of the SPMD runtime."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, SPMDError, run_spmd, waitall


class TestSendRecv:
    def test_basic_roundtrip(self, run):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"x": 1}, dest=1)
                return None
            if comm.rank == 1:
                return comm.recv(source=0)
            return None

        out = run(2, prog)
        assert out[1] == {"x": 1}

    def test_numpy_payload_is_copied(self, run):
        def prog(comm):
            if comm.rank == 0:
                arr = np.arange(4)
                comm.send(arr, dest=1)
                arr[:] = -1  # mutation after send must not be visible
                return None
            return comm.recv(source=0)

        out = run(2, prog)
        assert np.array_equal(out[1], [0, 1, 2, 3])

    def test_tag_matching(self, run):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)  # spmd: ignore[TAG-COLLISION]
                comm.send("b", dest=1, tag=2)  # spmd: ignore[TAG-COLLISION]
                return None
            first = comm.recv(source=0, tag=2)  # spmd: ignore[TAG-COLLISION]
            second = comm.recv(source=0, tag=1)  # spmd: ignore[TAG-COLLISION]
            return first, second

        assert run(2, prog)[1] == ("b", "a")

    def test_fifo_order_same_tag(self, run):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1, tag=9)  # spmd: ignore[TAG-COLLISION]
                return None
            return [comm.recv(source=0, tag=9) for _ in range(5)]  # spmd: ignore[TAG-COLLISION]

        assert run(2, prog)[1] == [0, 1, 2, 3, 4]

    def test_any_source_any_tag(self, run):
        def prog(comm):
            if comm.rank != 0:
                comm.send(comm.rank, dest=0, tag=comm.rank)
                return None
            got = sorted(comm.recv(ANY_SOURCE, ANY_TAG) for _ in range(3))
            return got

        assert run(4, prog)[0] == [1, 2, 3]

    def test_return_status(self, run):
        def prog(comm):
            if comm.rank == 0:
                comm.send("hi", dest=1, tag=42)
                return None
            return comm.recv(return_status=True)

        payload, (src, tag) = run(2, prog)[1]
        assert payload == "hi" and src == 0 and tag == 42

    def test_sendrecv_exchange(self, run):
        def prog(comm):
            partner = comm.size - 1 - comm.rank
            return comm.sendrecv(comm.rank, dest=partner)

        assert run(4, prog) == [3, 2, 1, 0]

    def test_bad_peer_rejected(self, run):
        def prog(comm):
            comm.send(1, dest=5)

        with pytest.raises(SPMDError):
            run(2, prog)

    def test_recv_advances_clock(self, run):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(1 << 16), dest=1)
            if comm.rank == 1:
                comm.recv(source=0)
            return comm.clock

        clocks = run(2, prog)
        assert clocks[1] > 0
        assert clocks[1] > clocks[0]  # transfer time charged to the receiver


class TestNonBlocking:
    def test_isend_completes_immediately(self, run):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend("x", dest=1)
                done, _ = req.test()
                assert done
                req.wait()
                return None
            return comm.recv(source=0)

        assert run(2, prog)[1] == "x"

    def test_irecv_wait(self, run):
        def prog(comm):
            if comm.rank == 0:
                comm.send(123, dest=1)
                return None
            req = comm.irecv(source=0)
            return req.wait()

        assert run(2, prog)[1] == 123

    def test_irecv_test_before_arrival(self, run):
        def prog(comm):
            if comm.rank == 1:
                req = comm.irecv(source=0, tag=7)  # spmd: ignore[TAG-COLLISION]
                done, _ = req.test()  # nothing sent yet on tag 7
                comm.send("ready", dest=0)
                val = req.wait()
                return done, val
            comm.recv(source=1)  # wait until rank 1 has tested
            comm.send("late", dest=1, tag=7)  # spmd: ignore[TAG-COLLISION]
            return None

        done, val = run(2, prog)[1]
        assert done is False and val == "late"

    def test_waitall(self, run):
        def prog(comm):
            if comm.rank == 0:
                reqs = [comm.isend(i, dest=1, tag=i) for i in range(3)]
                waitall(reqs)
                return None
            reqs = [comm.irecv(source=0, tag=i) for i in range(3)]
            return waitall(reqs)

        assert run(2, prog)[1] == [0, 1, 2]

    def test_iprobe(self, run):
        def prog(comm):
            if comm.rank == 0:
                comm.send("m", dest=1)
                return None
            while not comm.iprobe(source=0):
                pass
            return comm.recv(source=0)

        assert run(2, prog)[1] == "m"
