"""Runtime sanitizer: one fixture per detector, composition, non-perturbation."""

import numpy as np
import pytest

from repro.data import make_partition
from repro.core import histogram_sort
from repro.mpi import run_spmd
from repro.sanitize import (
    HB_RACE,
    RECV_ALIAS,
    WRITE_AFTER_ISEND,
    SanitizerError,
)


def kinds(err: SanitizerError) -> set[str]:
    return {f.kind for f in err.findings}


class _SelfBox:
    """Payload that defeats the runtime's eager copy: deepcopy returns self,
    so sender and receiver end up holding the *same* array."""

    def __init__(self, arr):
        self.arr = arr

    def __deepcopy__(self, memo):
        return self


# ------------------------------------------------------ WRITE-AFTER-ISEND


class TestWriteAfterIsend:
    def test_mutation_before_wait_is_flagged(self):
        def prog(comm):
            if comm.rank == 0:
                buf = np.arange(64, dtype=np.float64)
                req = comm.isend(buf, 1)
                buf[3] = -1.0  # torn write on real MPI  # spmd: ignore[BUFFER-REUSE]
                req.wait()
            elif comm.rank == 1:
                comm.recv(0)

        with pytest.raises(SanitizerError) as ei:
            run_spmd(2, prog, sanitize=True)
        assert kinds(ei.value) == {WRITE_AFTER_ISEND}
        (finding,) = ei.value.findings
        assert finding.world_rank == 0
        assert "isend" in finding.format()

    def test_mutation_after_wait_is_clean(self):
        def prog(comm):
            if comm.rank == 0:
                buf = np.arange(64, dtype=np.float64)
                req = comm.isend(buf, 1)
                req.wait()
                buf[3] = -1.0
            elif comm.rank == 1:
                comm.recv(0)

        run_spmd(2, prog, sanitize=True)

    def test_untouched_buffer_is_clean(self):
        def prog(comm):
            if comm.rank == 0:
                buf = np.arange(64, dtype=np.float64)
                comm.isend(buf, 1).wait()
            elif comm.rank == 1:
                comm.recv(0)

        run_spmd(2, prog, sanitize=True)

    def test_check_runs_once_per_request(self):
        # wait() after test() must not re-fingerprint (completion is one
        # event); mutating after completion stays clean.
        def prog(comm):
            if comm.rank == 0:
                buf = np.zeros(8)
                req = comm.isend(buf, 1)
                req.test()
                buf[0] = 1.0
                req.wait()
            elif comm.rank == 1:
                comm.recv(0)

        run_spmd(2, prog, sanitize=True)


# ------------------------------------------------------------- RECV-ALIAS


class TestRecvAlias:
    def test_deepcopy_defeating_payload_is_flagged(self):
        def prog(comm):
            if comm.rank == 0:
                box = _SelfBox(np.ones(32))
                comm.send(box, 1)
                comm.recv(1)  # keep `box` alive until delivery
            elif comm.rank == 1:
                comm.recv(0)
                comm.send(0, 0)

        with pytest.raises(SanitizerError) as ei:
            run_spmd(2, prog, sanitize=True)
        assert RECV_ALIAS in kinds(ei.value)
        assert any(f.world_rank == 1 for f in ei.value.findings)

    def test_normal_payloads_are_copied(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"a": np.ones(32), "b": [np.zeros(4)]}, 1)
            elif comm.rank == 1:
                comm.recv(0)

        run_spmd(2, prog, sanitize=True)


# ---------------------------------------------------------------- HB-RACE


class TestHbRace:
    def test_unordered_write_read_is_flagged(self):
        shared = {"slot": 0}

        def prog(comm):
            if comm.rank == 0:
                comm.mark_write(shared)
                shared["slot"] = 1
            else:
                comm.mark_read(shared)
                _ = shared["slot"]

        with pytest.raises(SanitizerError) as ei:
            run_spmd(2, prog, sanitize=True)
        assert kinds(ei.value) == {HB_RACE}

    def test_message_ordered_accesses_are_clean(self):
        shared = {"slot": 0}

        def prog(comm):
            if comm.rank == 0:
                comm.mark_write(shared)
                shared["slot"] = 1
                comm.send(None, 1)  # happens-before edge
            else:
                comm.recv(0)
                comm.mark_read(shared)
                _ = shared["slot"]

        run_spmd(2, prog, sanitize=True)

    def test_barrier_ordered_accesses_are_clean(self):
        shared = {"slot": 0}

        def prog(comm):
            if comm.rank == 0:
                comm.mark_write(shared)
                shared["slot"] = 1
            comm.barrier()
            if comm.rank == 1:
                comm.mark_read(shared)
                _ = shared["slot"]

        run_spmd(4, prog, sanitize=True)

    def test_write_write_race(self):
        shared = np.zeros(8)

        def prog(comm):
            comm.mark_write(shared)
            shared[comm.rank] = comm.rank

        with pytest.raises(SanitizerError) as ei:
            run_spmd(2, prog, sanitize=True)
        assert kinds(ei.value) == {HB_RACE}

    def test_marks_are_noops_when_off(self):
        shared = {"slot": 0}

        def prog(comm):
            comm.mark_write(shared)
            shared["slot"] = comm.rank

        run_spmd(2, prog)  # sanitize off: marks must not raise or track


# --------------------------------------------------------- configuration


class TestConfiguration:
    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")

        def prog(comm):
            if comm.rank == 0:
                buf = np.zeros(8)
                req = comm.isend(buf, 1)
                buf[0] = 1.0  # spmd: ignore[BUFFER-REUSE]
                req.wait()
            elif comm.rank == 1:
                comm.recv(0)

        with pytest.raises(SanitizerError):
            run_spmd(2, prog)

    def test_explicit_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")

        def prog(comm):
            if comm.rank == 0:
                buf = np.zeros(8)
                req = comm.isend(buf, 1)
                buf[0] = 1.0  # spmd: ignore[BUFFER-REUSE]
                req.wait()
            elif comm.rank == 1:
                comm.recv(0)

        run_spmd(2, prog, sanitize=False)

    def test_composes_with_check_and_trace(self):
        def prog(comm):
            local = make_partition("uniform_u64", 512, rank=comm.rank, seed=7)
            return histogram_sort(comm, local).output

        results, rt = run_spmd(
            4, prog, sanitize=True, check=True, trace=True, return_runtime=True
        )
        assert rt.sanitizer is not None
        assert rt.sanitizer.findings == []
        assert rt.trace is not None
        merged = np.sort(np.concatenate(results))
        assert np.all(np.diff(merged.astype(np.int64)) >= 0)

    def test_findings_format_mentions_rank_op_vc(self):
        def prog(comm):
            if comm.rank == 0:
                buf = np.zeros(8)
                req = comm.isend(buf, 1)
                buf[0] = 1.0  # spmd: ignore[BUFFER-REUSE]
                req.wait()
            elif comm.rank == 1:
                comm.recv(0)

        with pytest.raises(SanitizerError) as ei:
            run_spmd(2, prog, sanitize=True)
        text = ei.value.findings[0].format()
        assert "rank 0" in text
        assert "vc=" in text


# ------------------------------------------------------- non-perturbation


class TestNonPerturbation:
    def test_16_rank_histsort_clocks_bit_identical(self):
        def prog(comm):
            local = make_partition("uniform_u64", 2000, rank=comm.rank, seed=3)
            return histogram_sort(comm, local).output

        res_off, rt_off = run_spmd(16, prog, return_runtime=True, sanitize=False)
        res_on, rt_on = run_spmd(16, prog, return_runtime=True, sanitize=True)
        assert rt_on.sanitizer is not None
        assert rt_on.sanitizer.findings == []
        # Virtual clocks must be *bit-identical*: the sanitizer observes,
        # it never advances modelled time.
        assert np.array_equal(rt_off.clocks, rt_on.clocks)
        assert rt_off.elapsed() == rt_on.elapsed()
        for a, b in zip(res_off, res_on):
            assert np.array_equal(a, b)

    def test_p2p_pattern_clocks_identical(self):
        def prog(comm):
            if comm.rank % 2 == 0 and comm.rank + 1 < comm.size:
                comm.send(np.arange(100) + comm.rank, comm.rank + 1)
                return comm.recv(comm.rank + 1)
            if comm.rank % 2 == 1:
                got = comm.recv(comm.rank - 1)
                comm.send(got.sum(), comm.rank - 1)
                return None

        _, rt_off = run_spmd(8, prog, return_runtime=True, sanitize=False)
        _, rt_on = run_spmd(8, prog, return_runtime=True, sanitize=True)
        assert np.array_equal(rt_off.clocks, rt_on.clocks)
