"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import abstract_cluster
from repro.mpi import run_spmd


@pytest.fixture
def rng():
    return np.random.default_rng(0xC0FFEE)


def spmd(p, fn, *args, **kwargs):
    """Run an SPMD function on a small abstract cluster; returns rank results."""
    kwargs.setdefault("machine", abstract_cluster(max(1, (p + 7) // 8), cores_per_node=8))
    return run_spmd(p, fn, *args, **kwargs)


@pytest.fixture
def run():
    return spmd
