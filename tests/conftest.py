"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.machine import abstract_cluster
from repro.mpi import run_spmd


@pytest.fixture(scope="session", autouse=True)
def _isolated_analyze_store():
    """Keep analyzer CLI subprocesses away from the user's real store.

    The lint CLI persists per-file records under ``~/.cache`` by default;
    tests must neither read a developer's warm store (their hit/miss
    assertions would flake) nor pollute it with fixture files.
    """
    import os

    with tempfile.TemporaryDirectory(prefix="repro-analyze-test-") as tmp:
        old = os.environ.get("REPRO_ANALYZE_CACHE")
        os.environ["REPRO_ANALYZE_CACHE"] = str(Path(tmp) / "analyze.json")
        try:
            yield
        finally:
            if old is None:
                os.environ.pop("REPRO_ANALYZE_CACHE", None)
            else:
                os.environ["REPRO_ANALYZE_CACHE"] = old


@pytest.fixture
def rng():
    return np.random.default_rng(0xC0FFEE)


def spmd(p, fn, *args, **kwargs):
    """Run an SPMD function on a small abstract cluster; returns rank results."""
    kwargs.setdefault("machine", abstract_cluster(max(1, (p + 7) // 8), cores_per_node=8))
    return run_spmd(p, fn, *args, **kwargs)


@pytest.fixture
def run():
    return spmd
