"""Machine presets: every preset builds a valid, priceable MachineSpec."""

import numpy as np
import pytest

from repro.machine import (
    MachineSpec,
    abstract_cluster,
    laptop,
    single_node,
    supermuc_phase2,
)
from repro.machine.cost import CostModel
from repro.machine.spec import Level
from repro.machine.topology import make_placement

PRESETS = {
    "supermuc_phase2": supermuc_phase2,
    "laptop": laptop,
    "single_node": single_node,
    "abstract_cluster_4n": lambda: abstract_cluster(4),
}


@pytest.mark.parametrize("name", sorted(PRESETS))
class TestEveryPreset:
    def test_builds_valid_spec(self, name):
        m = PRESETS[name]()
        assert isinstance(m, MachineSpec)
        assert m.nodes >= 1
        assert m.total_cores >= 1
        assert m.bisection_bandwidth > 0
        if m.nodes > 1:
            assert Level.NETWORK in m.links

    def test_links_resolve_up_to_own_span(self, name):
        # every level the machine can actually contain must price
        m = PRESETS[name]()
        top = Level.NETWORK if m.nodes > 1 else Level.NODE
        for level in Level:
            if Level.SELF <= level <= top:
                spec = m.link(level)
                assert spec.latency >= 0 and spec.bandwidth > 0

    def test_priceable_by_cost_model(self, name):
        # regression: the laptop preset used to lack a NODE link and blew
        # up inside CostModel; every preset must support a small placement
        m = PRESETS[name]()
        p = min(4, m.total_cores)
        cost = CostModel(make_placement(m, p, min(p, m.node.cores)))
        assert cost.ptp(0, p - 1, 4096) > 0
        vols = np.full((p, p), 1024.0)
        assert cost.alltoallv(vols, list(range(p))) > 0

    def test_signature_stable_and_nonempty(self, name):
        m = PRESETS[name]()
        assert m.signature() == PRESETS[name]().signature()
        assert len(m.signature()) == 12


class TestSupermucPhase2:
    def test_table1_shape(self):
        m = supermuc_phase2()
        assert m.nodes == 512
        assert m.node.cores == 28  # 2 sockets x 2 NUMA x 7 cores
        assert m.node.mem_bytes == 56 * 2**30
        assert m.bisection_bandwidth == pytest.approx(5.1e12)

    def test_nodes_argument(self):
        assert supermuc_phase2(nodes=16).nodes == 16


class TestSingleNode:
    def test_no_network_link(self):
        m = single_node()
        assert m.nodes == 1
        assert Level.NETWORK not in m.links

    def test_odd_numa_count(self):
        m = single_node(cores_per_numa=3, numa_domains=3)
        assert m.node.sockets == 1
        assert m.node.numa_per_socket == 3
        assert m.node.cores == 9


class TestAbstractCluster:
    def test_respects_arguments(self):
        m = abstract_cluster(
            8, cores_per_node=12, net_latency=5e-6, net_bandwidth=2.0e9
        )
        assert m.nodes == 8
        assert m.node.cores == 12
        assert m.total_cores == 96
        net = m.links[Level.NETWORK]
        assert net.latency == 5e-6 and net.bandwidth == 2.0e9
        assert m.bisection_bandwidth == pytest.approx(2.0e9 * 8 / 2)

    def test_distinct_shapes_distinct_signatures(self):
        assert abstract_cluster(2).signature() != abstract_cluster(4).signature()
        assert (
            abstract_cluster(2, cores_per_node=8).signature()
            != abstract_cluster(2, cores_per_node=16).signature()
        )

    def test_signature_ignores_name(self):
        import dataclasses

        m = abstract_cluster(2)
        renamed = dataclasses.replace(m, name="elsewhere")
        assert renamed.signature() == m.signature()
