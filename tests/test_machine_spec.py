"""Unit tests for repro.machine.spec."""

import math

import pytest

from repro.machine import (
    ComputeSpec,
    Level,
    LinkSpec,
    MachineSpec,
    NodeSpec,
    abstract_cluster,
    laptop,
    single_node,
    supermuc_phase2,
)


class TestLinkSpec:
    def test_cost_is_alpha_plus_beta(self):
        link = LinkSpec(latency=1e-6, bandwidth=1e9)
        assert link.cost(0) == pytest.approx(1e-6)
        assert link.cost(1e9) == pytest.approx(1.000001)

    def test_beta_is_inverse_bandwidth(self):
        link = LinkSpec(latency=0.0, bandwidth=4e9)
        assert link.beta == pytest.approx(0.25e-9)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LinkSpec(latency=-1e-9, bandwidth=1e9)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            LinkSpec(latency=0.0, bandwidth=0.0)


class TestNodeSpec:
    def test_core_arithmetic(self):
        node = NodeSpec(sockets=2, numa_per_socket=2, cores_per_numa=7)
        assert node.numa_domains == 4
        assert node.cores == 28
        assert node.hw_threads == 56

    def test_rejects_zero_sockets(self):
        with pytest.raises(ValueError):
            NodeSpec(sockets=0)


class TestComputeSpec:
    def test_sort_is_nlogn(self):
        c = ComputeSpec(call_overhead=0.0)
        t1 = c.sort(1 << 20)
        t2 = c.sort(1 << 21)
        assert t2 / t1 == pytest.approx(2 * 21 / 20, rel=1e-6)

    def test_sort_of_one_is_overhead_only(self):
        c = ComputeSpec()
        assert c.sort(1) == c.call_overhead
        assert c.sort(0) == c.call_overhead

    def test_kway_merge_counts_tree_passes(self):
        c = ComputeSpec(call_overhead=0.0)
        assert c.kway_merge(1000, 8) == pytest.approx(c.c_merge * 1000 * 3)
        assert c.kway_merge(1000, 1) == 0.0

    def test_search_scales_with_log_run_length(self):
        c = ComputeSpec(call_overhead=0.0)
        assert c.search(10, 2**16) == pytest.approx(c.c_search * 10 * 16)
        assert c.search(0, 100) == 0.0

    def test_memcpy_uses_bandwidth(self):
        c = ComputeSpec(call_overhead=0.0, memcpy_bandwidth=2e9)
        assert c.memcpy(2e9) == pytest.approx(1.0)

    def test_select_linear(self):
        c = ComputeSpec(call_overhead=0.0)
        assert c.select(2000) == pytest.approx(2 * c.select(1000))


class TestMachineSpec:
    def test_multi_node_requires_network_link(self):
        with pytest.raises(ValueError):
            MachineSpec(name="bad", nodes=4, links={})

    def test_single_node_ok_without_network(self):
        m = MachineSpec(
            name="ok", nodes=1, links={Level.NUMA: LinkSpec(1e-7, 1e9)}
        )
        assert m.total_cores == m.node.cores

    def test_link_inherits_from_farther_level(self):
        m = abstract_cluster(2)
        # SOCKET not defined explicitly: falls through to NETWORK
        assert m.link(Level.SOCKET) == m.link(Level.NETWORK)
        # NUMA defined explicitly
        assert m.link(Level.NUMA) != m.link(Level.NETWORK)

    def test_self_link_is_fast(self):
        m = abstract_cluster(2)
        assert m.link(Level.SELF).bandwidth > m.link(Level.NETWORK).bandwidth

    def test_with_nodes(self):
        m = supermuc_phase2(nodes=4)
        assert m.with_nodes(16).nodes == 16
        assert m.with_nodes(16).node == m.node

    def test_describe_mentions_key_facts(self):
        text = supermuc_phase2().describe()
        assert "E5-2697v3" in text
        assert "Infiniband" in text


class TestPresets:
    def test_supermuc_matches_table1(self):
        m = supermuc_phase2()
        assert m.node.cpu_model == "E5-2697v3"
        assert m.node.cores == 28
        assert m.node.numa_domains == 4
        assert m.node.mem_bytes == 56 * 2**30
        assert m.bisection_bandwidth == pytest.approx(5.1e12)
        assert m.nodes == 512

    def test_single_node_has_no_network(self):
        m = single_node()
        assert m.nodes == 1
        assert Level.NETWORK not in m.links

    def test_laptop_is_small(self):
        m = laptop(cores=4)
        assert m.total_cores == 4

    def test_abstract_cluster_sizes(self):
        m = abstract_cluster(8, cores_per_node=4)
        assert m.nodes == 8
        assert m.total_cores == 32
