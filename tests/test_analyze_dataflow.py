"""CFG/dataflow lint rules: fixtures per rule, path sensitivity, repo hygiene."""

import textwrap

from repro.analyze import analyze_source
from repro.analyze.astlint import module_from_source
from repro.analyze.dataflow import build_cfg


def findings_for(src, rule=None):
    out = analyze_source(textwrap.dedent(src), path="fixture.py", modname="fixture")
    if rule is None:
        return out
    return [f for f in out if f.rule == rule]


class TestCfg:
    def _cfg(self, src):
        mod = module_from_source(textwrap.dedent(src), "fixture.py")
        fn = mod.tree.body[0]
        return build_cfg(fn)

    def test_straightline_is_one_block(self):
        cfg = self._cfg(
            """
            def f(comm):
                a = 1
                b = a + 1
                return b
            """
        )
        assert len(cfg.blocks[0].stmts) >= 2
        assert not cfg.blocks[0].succ or all(
            not cfg.blocks[s].stmts for s in cfg.blocks[0].succ
        )

    def test_if_produces_diamond(self):
        cfg = self._cfg(
            """
            def f(comm):
                if comm.rank == 0:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        entry = cfg.blocks[0]
        assert len(entry.succ) == 2  # then / else
        joins = {s2 for s in entry.succ for s2 in cfg.blocks[s].succ}
        assert len(joins) == 1  # both branches meet again

    def test_while_has_back_edge(self):
        cfg = self._cfg(
            """
            def f(comm):
                i = 0
                while i < 3:
                    i += 1
                return i
            """
        )
        back = any(
            s <= i for i, b in enumerate(cfg.blocks) for s in b.succ if b.stmts
        )
        assert back


class TestBufferReuse:
    RULE = "SPMD-BUFFER-REUSE"

    def test_write_before_wait(self):
        hits = findings_for(
            """
            import numpy as np
            def f(comm):
                buf = np.zeros(8)
                req = comm.isend(buf, dest=1)
                buf[0] = 1.0
                req.wait()
            """,
            self.RULE,
        )
        assert len(hits) == 1
        assert "'buf'" in hits[0].message
        assert "line 5" in hits[0].message  # the isend site

    def test_write_after_wait_is_clean(self):
        assert not findings_for(
            """
            import numpy as np
            def f(comm):
                buf = np.zeros(8)
                req = comm.isend(buf, dest=1)
                req.wait()
                buf[0] = 1.0
            """,
            self.RULE,
        )

    def test_wait_on_one_path_only(self):
        # wait() happens only on the rank-0 path; the write is reachable
        # with the request still live.
        hits = findings_for(
            """
            import numpy as np
            def f(comm):
                buf = np.zeros(8)
                req = comm.isend(buf, dest=1)
                if comm.rank == 0:
                    req.wait()
                buf.fill(0.0)
                req.wait()
            """,
            self.RULE,
        )
        assert len(hits) == 1

    def test_wait_on_both_paths_is_clean(self):
        assert not findings_for(
            """
            import numpy as np
            def f(comm):
                buf = np.zeros(8)
                req = comm.isend(buf, dest=1)
                if comm.rank == 0:
                    req.wait()
                else:
                    req.wait()
                buf.fill(0.0)
            """,
            self.RULE,
        )

    def test_request_list_drained_by_loop(self):
        assert not findings_for(
            """
            import numpy as np
            def f(comm):
                reqs = []
                buf = np.zeros(8)
                reqs.append(comm.isend(buf, dest=1))
                for r in reqs:
                    r.wait()
                buf[1] = 2.0
            """,
            self.RULE,
        )

    def test_request_list_write_before_drain(self):
        hits = findings_for(
            """
            import numpy as np
            def f(comm):
                reqs = []
                buf = np.zeros(8)
                reqs.append(comm.isend(buf, dest=1))
                buf[1] = 2.0
                for r in reqs:
                    r.wait()
            """,
            self.RULE,
        )
        assert len(hits) == 1

    def test_waitall_kills(self):
        assert not findings_for(
            """
            import numpy as np
            from repro.mpi import waitall
            def f(comm):
                reqs = []
                buf = np.zeros(8)
                reqs.append(comm.isend(buf, dest=1))
                waitall(reqs)
                buf[0] = 9.0
            """,
            self.RULE,
        )

    def test_augassign_and_np_copyto(self):
        hits = findings_for(
            """
            import numpy as np
            def f(comm):
                a = np.zeros(8)
                b = np.zeros(8)
                ra = comm.isend(a, dest=1)
                rb = comm.isend(b, dest=1)
                a += 1
                np.copyto(b, a)
                ra.wait()
                rb.wait()
            """,
            self.RULE,
        )
        assert len(hits) == 2

    def test_rebinding_is_not_mutation(self):
        # `buf = ...` binds the name to a new object; the sent buffer is
        # untouched.
        assert not findings_for(
            """
            import numpy as np
            def f(comm):
                buf = np.zeros(8)
                req = comm.isend(buf, dest=1)
                buf = np.ones(8)
                buf[0] = 5.0
                req.wait()
            """,
            self.RULE,
        )

    def test_temporary_payload_is_clean(self):
        # `buf + 1` materializes a temporary; writing buf afterwards is fine.
        assert not findings_for(
            """
            import numpy as np
            def f(comm):
                buf = np.zeros(8)
                req = comm.isend(buf + 1, dest=1)
                buf[0] = 1.0
                req.wait()
            """,
            self.RULE,
        )

    def test_loop_carried_request(self):
        # The write at the top of iteration 2 races the isend of iteration 1
        # (the wait is at the bottom, but the back edge carries the fact).
        hits = findings_for(
            """
            import numpy as np
            def f(comm):
                buf = np.zeros(8)
                req = None
                for i in range(4):
                    buf[0] = i
                    if req is not None:
                        req.wait()
                    req = comm.isend(buf, dest=1)
                req.wait()
            """,
            self.RULE,
        )
        assert len(hits) == 1

    def test_suppression_shorthand(self):
        assert not findings_for(
            """
            import numpy as np
            def f(comm):
                buf = np.zeros(8)
                req = comm.isend(buf, dest=1)
                buf[0] = 1.0  # spmd: ignore[BUFFER-REUSE]
                req.wait()
            """,
            self.RULE,
        )


class TestViewSend:
    RULE = "SPMD-VIEW-SEND"

    def test_slice_payload(self):
        hits = findings_for(
            """
            import numpy as np
            def f(comm):
                a = np.zeros((4, 4))
                comm.send(a[1:], 1)
            """,
            self.RULE,
        )
        assert len(hits) == 1
        assert "slice" in hits[0].message

    def test_transpose_and_reshape(self):
        hits = findings_for(
            """
            import numpy as np
            def f(comm):
                a = np.zeros((4, 4))
                comm.isend(a.T, 1)
                comm.bcast(a.reshape(16), root=0)
            """,
            self.RULE,
        )
        assert len(hits) == 2

    def test_copy_is_clean(self):
        assert not findings_for(
            """
            import numpy as np
            def f(comm):
                a = np.zeros((4, 4))
                comm.send(a[1:].copy(), 1)
                comm.send(a, 1)
                comm.send(a[0], 1)
            """,
            self.RULE,
        )

    def test_recv_side_not_flagged(self):
        assert not findings_for(
            """
            def f(comm):
                msg = comm.recv(0)
                return msg[1:]
            """,
            self.RULE,
        )


class TestShapeMismatch:
    RULE = "SPMD-SHAPE-MISMATCH"

    def test_rank_sized_allreduce(self):
        hits = findings_for(
            """
            import numpy as np
            def f(comm):
                n = comm.rank + 1
                local = np.zeros(n)
                return comm.allreduce(local)
            """,
            self.RULE,
        )
        assert len(hits) == 1
        assert "'local'" in hits[0].message

    def test_rank_sized_list_alltoall(self):
        hits = findings_for(
            """
            def f(comm):
                n = comm.rank
                return comm.alltoall([0] * n)
            """,
            self.RULE,
        )
        assert len(hits) == 1

    def test_rank_sized_slice(self):
        hits = findings_for(
            """
            import numpy as np
            def f(comm, data):
                k = comm.rank * 2
                return comm.allreduce(data[:k])
            """,
            self.RULE,
        )
        assert len(hits) == 1

    def test_uniform_size_is_clean(self):
        assert not findings_for(
            """
            import numpy as np
            def f(comm):
                a = np.zeros(comm.size)
                b = comm.allreduce(a)
                c = comm.allreduce(np.zeros(16))
                return b, c
            """,
            self.RULE,
        )

    def test_scalar_payload_is_clean(self):
        # Rank-dependent *values* are the whole point of a reduction;
        # only rank-dependent *lengths* break congruence.
        assert not findings_for(
            """
            def f(comm):
                n = comm.rank + 1
                return comm.allreduce(n)
            """,
            self.RULE,
        )

    def test_gather_is_exempt(self):
        # gather/allgather/alltoallv accept rank-dependent shapes by design.
        assert not findings_for(
            """
            import numpy as np
            def f(comm):
                n = comm.rank + 1
                return comm.allgather(np.zeros(n))
            """,
            self.RULE,
        )


class TestRepoIsCleanUnderDataflowRules:
    def test_src_repro_has_no_findings(self):
        from pathlib import Path

        from repro.analyze import analyze_paths

        root = Path(__file__).resolve().parents[1]
        findings = [
            f
            for f in analyze_paths([root / "src" / "repro"])
            if f.rule
            in ("SPMD-BUFFER-REUSE", "SPMD-VIEW-SEND", "SPMD-SHAPE-MISMATCH")
        ]
        assert findings == [], [f.format() for f in findings]
