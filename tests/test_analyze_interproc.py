"""Whole-program analysis: call graph, interprocedural rules, store, CLI."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analyze.astlint import (
    Finding,
    analyze_modules,
    analyze_paths,
    module_from_source,
)
from repro.analyze.baseline import load_baseline, subtract_baseline, write_baseline
from repro.analyze.callgraph import CallGraph, index_module
from repro.analyze.engine import analyze_program
from repro.analyze.interproc import (
    INTERPROC_RULES,
    ModuleSummary,
    check_program,
    summarize_module,
)
from repro.analyze.store import AnalysisStore

ROOT = Path(__file__).resolve().parents[1]


def _mod(src, path="m.py", modname=None):
    out = module_from_source(textwrap.dedent(src), path, modname)
    assert isinstance(out, type(out)) and not isinstance(out, Finding), out
    return out


def program_findings(*mods):
    """Findings of the interprocedural phase over (src, path, modname) triples."""
    summaries = []
    for src, path, modname in mods:
        summaries.append(summarize_module(_mod(src, path, modname)))
    return check_program(summaries)


# ------------------------------------------------------------- call graph


class TestCallGraph:
    def test_indexes_functions_methods_and_closures(self):
        ix = index_module(
            _mod(
                """
                def top(a, b):
                    def inner(c):
                        return c
                    return inner

                class Sorter:
                    def run(self, comm):
                        return comm
                """
            )
        )
        assert set(ix.functions) == {"top", "top.<locals>.inner", "Sorter.run"}
        assert ix.functions["Sorter.run"].cls == "Sorter"
        assert ix.functions["top"].params == ["a", "b"]

    def test_import_maps(self):
        ix = index_module(
            _mod(
                """
                import repro.mpi as mpi
                from repro.mpi.runtime import run_spmd as go
                """,
                modname="repro.x",
            )
        )
        assert ix.import_modules["mpi"] == "repro.mpi"
        assert ix.import_symbols["go"] == ("repro.mpi.runtime", "run_spmd")

    def test_relative_import_resolution(self):
        ix = index_module(
            _mod("from ..mpi import tags\n", modname="repro.core.sample")
        )
        assert ix.import_symbols["tags"] == ("repro.mpi", "tags")

    def test_entry_mark_via_run_spmd(self):
        ix = index_module(
            _mod(
                """
                from repro.mpi import run_spmd

                def body(c, xs):
                    return xs

                def main():
                    run_spmd(4, body, [1])
                """
            )
        )
        assert ix.functions["body"].is_entry
        assert not ix.functions["main"].is_entry

    def test_cross_module_resolution_by_symbol_import(self):
        a = index_module(_mod("def helper(comm):\n    pass\n", "a.py", "pkg.a"))
        b = index_module(
            _mod(
                "from pkg.a import helper\n\ndef caller(comm):\n    helper(comm)\n",
                "b.py",
                "pkg.b",
            )
        )
        graph = CallGraph([a, b])
        assert graph.resolve("b.py", "caller", ("name", "helper")) == "a.py::helper"

    def test_cross_module_resolution_by_module_alias(self):
        a = index_module(_mod("def helper(comm):\n    pass\n", "a.py", "pkg.a"))
        b = index_module(
            _mod("import pkg.a as pa\n", "b.py", "pkg.b")
        )
        graph = CallGraph([a, b])
        assert graph.resolve("b.py", "caller", ("attr", "pa", "helper")) == "a.py::helper"

    def test_bare_name_never_resolves_to_sibling_method(self):
        ix = index_module(
            _mod(
                """
                class C:
                    def helper(self):
                        pass

                    def caller(self):
                        helper()
                """
            )
        )
        graph = CallGraph([ix])
        assert graph.resolve("m.py", "C.caller", ("name", "helper")) is None
        assert (
            graph.resolve("m.py", "C.caller", ("self", "helper")) == "m.py::C.helper"
        )

    def test_closure_shadows_module_level(self):
        ix = index_module(
            _mod(
                """
                def helper():
                    pass

                def outer():
                    def helper():
                        pass
                    helper()
                """
            )
        )
        graph = CallGraph([ix])
        assert (
            graph.resolve("m.py", "outer", ("name", "helper"))
            == "m.py::outer.<locals>.helper"
        )

    def test_sccs_bottom_up_orders_callees_first(self):
        ix = index_module(
            _mod(
                """
                def leaf():
                    pass

                def mid():
                    leaf()

                def top():
                    mid()

                def rec_a():
                    rec_b()

                def rec_b():
                    rec_a()
                """
            )
        )
        graph = CallGraph([ix])
        for caller, callee in (
            ("top", "mid"),
            ("mid", "leaf"),
            ("rec_a", "rec_b"),
            ("rec_b", "rec_a"),
        ):
            graph.add_edge(f"m.py::{caller}", f"m.py::{callee}")
        sccs = list(graph.sccs_bottom_up())
        pos = {key: i for i, scc in enumerate(sccs) for key in scc}
        assert pos["m.py::leaf"] < pos["m.py::mid"] < pos["m.py::top"]
        # mutual recursion collapses into one SCC
        assert pos["m.py::rec_a"] == pos["m.py::rec_b"]


# --------------------------------------------------- interprocedural rules


class TestEscapedRequest:
    RULE = "SPMD-ESCAPED-REQUEST"

    def test_discarded_escaping_request(self):
        hits = program_findings(
            (
                """
                def push(comm, buf, peer):
                    return comm.isend(buf, peer, tag=3)

                def phase(comm, buf):
                    push(comm, buf, (comm.rank + 1) % comm.size)
                """,
                "a.py",
                "a",
            )
        )
        assert [f.rule for f in hits] == [self.RULE]
        assert "isend()" in hits[0].message
        assert hits[0].related == (("a.py", 3),)

    def test_named_but_never_used(self):
        hits = program_findings(
            (
                """
                def push(comm, buf, peer):
                    return comm.isend(buf, peer, tag=3)

                def phase(comm, buf):
                    req = push(comm, buf, 0)
                    return buf
                """,
                "a.py",
                "a",
            )
        )
        assert [f.rule for f in hits] == [self.RULE]
        assert "'req'" in hits[0].message

    def test_waited_in_caller_is_clean(self):
        assert not program_findings(
            (
                """
                def push(comm, buf, peer):
                    return comm.isend(buf, peer, tag=3)

                def phase(comm, buf):
                    req = push(comm, buf, 0)
                    req.wait()
                """,
                "a.py",
                "a",
            )
        )

    def test_request_waited_inside_callee_is_clean(self):
        # the callee completes its own request; nothing escapes
        assert not program_findings(
            (
                """
                def push(comm, buf, peer):
                    req = comm.isend(buf, peer, tag=3)
                    req.wait()
                    return None

                def phase(comm, buf):
                    push(comm, buf, 0)
                """,
                "a.py",
                "a",
            )
        )

    def test_escape_through_two_levels(self):
        hits = program_findings(
            (
                """
                def push(comm, buf):
                    return comm.isend(buf, 0, tag=3)

                def wrapper(comm, buf):
                    return push(comm, buf)

                def phase(comm, buf):
                    wrapper(comm, buf)
                """,
                "a.py",
                "a",
            )
        )
        assert [f.rule for f in hits] == [self.RULE]


class TestInterprocDivCollective:
    RULE = "SPMD-INTERPROC-DIV-COLLECTIVE"

    def test_divergent_call_to_collective_helper(self):
        hits = program_findings(
            (
                """
                def sync(comm):
                    comm.barrier()

                def step(comm):
                    if comm.rank == 0:
                        sync(comm)
                """,
                "b.py",
                "b",
            )
        )
        assert [f.rule for f in hits] == [self.RULE]
        assert "comm.barrier()" in hits[0].message
        assert hits[0].related == (("b.py", 3),)

    def test_transitive_chain_reports_via(self):
        hits = program_findings(
            (
                """
                def leaf(comm):
                    comm.allreduce(1)

                def mid(comm):
                    leaf(comm)

                def step(comm):
                    if comm.rank % 2 == 0:
                        mid(comm)
                """,
                "c.py",
                "c",
            )
        )
        assert [f.rule for f in hits] == [self.RULE]
        assert "via leaf" in hits[0].message

    def test_cross_module_divergent_call(self):
        hits = program_findings(
            (
                "def sync(comm):\n    comm.barrier()\n",
                "lib.py",
                "lib",
            ),
            (
                """
                from lib import sync

                def step(comm):
                    if comm.rank == 0:
                        sync(comm)
                """,
                "use.py",
                "use",
            ),
        )
        assert [f.rule for f in hits] == [self.RULE]
        assert hits[0].path == "use.py"
        assert hits[0].related == (("lib.py", 2),)

    def test_uniform_call_is_clean(self):
        assert not program_findings(
            (
                """
                def sync(comm):
                    comm.barrier()

                def step(comm):
                    sync(comm)
                """,
                "b.py",
                "b",
            )
        )

    def test_helper_without_collective_is_clean(self):
        assert not program_findings(
            (
                """
                def stamp(comm):
                    return comm.rank

                def step(comm):
                    if comm.rank == 0:
                        stamp(comm)
                """,
                "b.py",
                "b",
            )
        )

    def test_entry_marked_closure_with_custom_comm_name(self):
        hits = program_findings(
            (
                """
                from repro.mpi import run_spmd

                def body(c, xs):
                    if c.rank == 0:
                        helper(c)

                def helper(c):
                    c.barrier()

                def main():
                    run_spmd(4, body, [1, 2])
                """,
                "f.py",
                "f",
            )
        )
        assert [f.rule for f in hits] == [self.RULE]

    def test_recursive_helper_reaches_fixpoint(self):
        hits = program_findings(
            (
                """
                def odd(comm, n):
                    if n > 0:
                        even(comm, n - 1)

                def even(comm, n):
                    comm.barrier()
                    if n > 0:
                        odd(comm, n - 1)

                def step(comm):
                    if comm.rank == 0:
                        odd(comm, 3)
                """,
                "r.py",
                "r",
            )
        )
        assert self.RULE in {f.rule for f in hits}


class TestInterprocTagCollision:
    RULE = "SPMD-INTERPROC-TAG-COLLISION"

    PROTO = (
        "def send_rows(comm, rows, peer, tag):\n    comm.send(rows, peer, tag=tag)\n",
        "proto.py",
        "proto",
    )

    def test_same_constant_from_two_modules(self):
        hits = program_findings(
            self.PROTO,
            (
                "from proto import send_rows\n\ndef a_phase(comm, rows):\n"
                "    send_rows(comm, rows, 1, 7)\n",
                "mod_a.py",
                "mod_a",
            ),
            (
                "from proto import send_rows\n\ndef b_phase(comm, rows):\n"
                "    send_rows(comm, rows, 2, 7)\n",
                "mod_b.py",
                "mod_b",
            ),
        )
        assert [f.rule for f in hits] == [self.RULE, self.RULE]
        assert {f.path for f in hits} == {"mod_a.py", "mod_b.py"}
        assert all(f.related == (("proto.py", 2),) for f in hits)

    def test_distinct_constants_are_clean(self):
        assert not program_findings(
            self.PROTO,
            (
                "from proto import send_rows\n\ndef a_phase(comm, rows):\n"
                "    send_rows(comm, rows, 1, 7)\n",
                "mod_a.py",
                "mod_a",
            ),
            (
                "from proto import send_rows\n\ndef b_phase(comm, rows):\n"
                "    send_rows(comm, rows, 2, 8)\n",
                "mod_b.py",
                "mod_b",
            ),
        )

    def test_same_module_reuse_is_clean(self):
        # intra-module protocol symmetry (send/recv pairs) is legitimate
        assert not program_findings(
            self.PROTO,
            (
                "from proto import send_rows\n\ndef a(comm, rows):\n"
                "    send_rows(comm, rows, 1, 7)\n\ndef b(comm, rows):\n"
                "    send_rows(comm, rows, 2, 7)\n",
                "mod_a.py",
                "mod_a",
            ),
        )

    def test_keyword_binding_and_transitive_param(self):
        hits = program_findings(
            self.PROTO,
            (
                "from proto import send_rows\n\ndef fwd(comm, rows, tag):\n"
                "    send_rows(comm, rows, 1, tag)\n",
                "mid.py",
                "mid",
            ),
            (
                "from mid import fwd\n\ndef go(comm, rows):\n"
                "    fwd(comm, rows, tag=9)\n",
                "mod_a.py",
                "mod_a",
            ),
            (
                "from mid import fwd\n\ndef go(comm, rows):\n"
                "    fwd(comm, rows, tag=9)\n",
                "mod_b.py",
                "mod_b",
            ),
        )
        assert {f.rule for f in hits} == {self.RULE}
        assert {f.path for f in hits} == {"mod_a.py", "mod_b.py"}

    def test_exempt_wildcard_tags_are_clean(self):
        assert not program_findings(
            self.PROTO,
            (
                "from proto import send_rows\n\ndef a_phase(comm, rows):\n"
                "    send_rows(comm, rows, 1, 0)\n",
                "mod_a.py",
                "mod_a",
            ),
            (
                "from proto import send_rows\n\ndef b_phase(comm, rows):\n"
                "    send_rows(comm, rows, 2, 0)\n",
                "mod_b.py",
                "mod_b",
            ),
        )


class TestRankTaintShape:
    RULE = "SPMD-RANK-TAINT-SHAPE"

    def test_tainted_scalar_return_sizes_uniform_collective(self):
        hits = program_findings(
            (
                """
                def my_share(comm, n):
                    return n // comm.size + (1 if comm.rank < n % comm.size else 0)

                def phase(comm, n):
                    k = my_share(comm, n)
                    data = [0] * k
                    comm.allreduce(data)
                """,
                "d.py",
                "d",
            )
        )
        assert [f.rule for f in hits] == [self.RULE]
        assert "my_share()" in hits[0].message
        assert hits[0].line == 8

    def test_rank_sized_container_return(self):
        hits = program_findings(
            (
                """
                def local_rows(comm, rows):
                    return rows[comm.rank :: comm.size]

                def phase(comm, rows):
                    mine = local_rows(comm, rows)
                    comm.alltoall(mine)
                """,
                "e.py",
                "e",
            )
        )
        assert [f.rule for f in hits] == [self.RULE]
        assert "rank-dependent length" in hits[0].message

    def test_uniform_return_is_clean(self):
        assert not program_findings(
            (
                """
                def my_share(comm, n):
                    return n // comm.size

                def phase(comm, n):
                    k = my_share(comm, n)
                    data = [0] * k
                    comm.allreduce(data)
                """,
                "d.py",
                "d",
            )
        )

    def test_result_not_reaching_collective_is_clean(self):
        assert not program_findings(
            (
                """
                def my_share(comm, n):
                    return n // comm.size + comm.rank

                def phase(comm, n):
                    k = my_share(comm, n)
                    data = [0] * k
                    return comm.gather(data)
                """,
                "d.py",
                "d",
            )
        )


# ----------------------------------------------------- incremental store


class TestAnalysisStore:
    FIXTURES = {
        "lib.py": "def sync(comm):\n    comm.barrier()\n",
        "use.py": (
            "from lib import sync\n\n"
            "def step(comm):\n"
            "    if comm.rank == 0:\n"
            "        sync(comm)  # spmd: ignore[INTERPROC-DIV-COLLECTIVE]\n"
        ),
        "solo.py": (
            "def f(comm, x):\n"
            "    if comm.rank == 0:\n"
            "        comm.barrier()\n"
        ),
    }

    def _write(self, tmp_path):
        for name, src in self.FIXTURES.items():
            (tmp_path / name).write_text(src)

    def test_warm_run_parses_nothing_and_matches(self, tmp_path):
        self._write(tmp_path)
        store_path = tmp_path / "store.json"
        cold = analyze_program([tmp_path], store=AnalysisStore(store_path))
        warm = analyze_program([tmp_path], store=AnalysisStore(store_path))
        assert cold.stats.parsed == 3 and cold.stats.reused == 0
        assert warm.stats.parsed == 0 and warm.stats.reused == 3
        assert warm.findings == cold.findings
        # the suppression comment survives the store round trip
        assert {f.rule for f in cold.findings} == {"SPMD-DIV-COLLECTIVE"}

    def test_changed_file_is_reparsed_alone(self, tmp_path):
        self._write(tmp_path)
        store_path = tmp_path / "store.json"
        analyze_program([tmp_path], store=AnalysisStore(store_path))
        (tmp_path / "use.py").write_text(
            self.FIXTURES["use.py"].replace("  # spmd: ignore[INTERPROC-DIV-COLLECTIVE]", "")
        )
        warm = analyze_program([tmp_path], store=AnalysisStore(store_path))
        assert warm.stats.parsed == 1 and warm.stats.reused == 2
        # dropping the ignore exposes the cross-file finding, proving the
        # global phase re-ran over the mixed cached+fresh records
        assert "SPMD-INTERPROC-DIV-COLLECTIVE" in {f.rule for f in warm.findings}

    def test_analyzer_version_invalidates_store(self, tmp_path, monkeypatch):
        self._write(tmp_path)
        store_path = tmp_path / "store.json"
        analyze_program([tmp_path], store=AnalysisStore(store_path))
        monkeypatch.setattr("repro.analyze.store.ANALYZER_VERSION", 999)
        warm = analyze_program([tmp_path], store=AnalysisStore(store_path))
        assert warm.stats.parsed == 3 and warm.stats.reused == 0

    def test_corrupt_store_degrades_to_cold(self, tmp_path):
        self._write(tmp_path)
        store_path = tmp_path / "store.json"
        store_path.write_text("{ not json")
        report = analyze_program([tmp_path], store=AnalysisStore(store_path))
        assert report.stats.parsed == 3
        assert json.loads(store_path.read_text())["schema"] == 1

    def test_parse_error_is_cached_and_kept(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        store_path = tmp_path / "store.json"
        cold = analyze_program([tmp_path], store=AnalysisStore(store_path))
        warm = analyze_program([tmp_path], store=AnalysisStore(store_path))
        assert warm.stats.parsed == 0
        assert [f.rule for f in cold.findings] == ["SPMD-PARSE-ERROR"]
        assert warm.findings == cold.findings

    def test_summary_round_trips_through_json(self):
        mod = _mod(
            """
            def push(comm, buf):
                return comm.isend(buf, 0, tag=3)

            def phase(comm, buf):
                if comm.rank == 0:
                    req = push(comm, buf)
                    req.wait()
            """,
            "rt.py",
            "rt",
        )
        summary = summarize_module(mod)
        clone = ModuleSummary.from_dict(json.loads(json.dumps(summary.to_dict())))
        assert clone.to_dict() == summary.to_dict()
        assert check_program([clone]) == check_program([summary])


# ------------------------------------------------------ legacy byte parity


class TestLegacyParity:
    def test_intra_findings_identical_on_src(self):
        """The engine's intraprocedural output must be byte-identical to the
        legacy per-module pipeline — the whole-program layer only adds."""
        files = sorted((ROOT / "src").rglob("*.py"))
        mods = []
        for f in files:
            out = module_from_source(f.read_text(encoding="utf-8"), str(f))
            assert not isinstance(out, Finding), out.format()
            mods.append(out)
        legacy = analyze_modules(mods)
        engine = [
            f
            for f in analyze_program([ROOT / "src"]).findings
            if f.rule not in INTERPROC_RULES
        ]
        assert [f.format() for f in engine] == [f.format() for f in legacy]

    def test_full_sweep_is_clean(self):
        paths = [ROOT / d for d in ("src", "examples", "tests", "benchmarks")]
        findings = analyze_paths(paths)
        assert findings == [], "\n".join(f.format() for f in findings)


# ----------------------------------------------------------- CLI contract


class TestCliWholeProgram:
    def _run(self, *args, cwd, store=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        if store is not None:
            env["REPRO_ANALYZE_CACHE"] = str(store)
        return subprocess.run(
            [sys.executable, "-m", "repro.analyze", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
            env=env,
        )

    BAD = "def f(comm, x):\n    if comm.rank == 0:\n        comm.barrier()\n"

    def test_interproc_finding_through_cli(self, tmp_path):
        (tmp_path / "lib.py").write_text("def sync(comm):\n    comm.barrier()\n")
        (tmp_path / "use.py").write_text(
            "from lib import sync\n\ndef step(comm):\n"
            "    if comm.rank == 0:\n        sync(comm)\n"
        )
        proc = self._run(str(tmp_path), cwd=ROOT)
        assert proc.returncode == 1
        assert "SPMD-INTERPROC-DIV-COLLECTIVE" in proc.stdout
        assert "lib.py:2" in proc.stdout  # witness location in the message

    def test_stats_reports_warm_run(self, tmp_path):
        (tmp_path / "ok.py").write_text("def f(comm, x):\n    return comm.allreduce(x)\n")
        store = tmp_path / "store.json"
        cold = self._run(str(tmp_path), "--stats", cwd=ROOT, store=store)
        warm = self._run(str(tmp_path), "--stats", cwd=ROOT, store=store)
        assert "(1 parsed, 0 reused)" in cold.stderr
        assert "(0 parsed, 1 reused)" in warm.stderr

    def test_no_store_never_writes(self, tmp_path):
        (tmp_path / "ok.py").write_text("def f(comm, x):\n    return comm.allreduce(x)\n")
        store = tmp_path / "store.json"
        proc = self._run(str(tmp_path), "--no-store", cwd=ROOT, store=store)
        assert proc.returncode == 0
        assert not store.exists()

    def test_baseline_write_then_check(self, tmp_path):
        (tmp_path / "bad.py").write_text(self.BAD)
        base = tmp_path / "base.json"
        wrote = self._run(
            str(tmp_path), "--baseline", "write", "--baseline-file", str(base), cwd=ROOT
        )
        assert wrote.returncode == 0
        assert json.loads(base.read_text())["schema"] == 1
        check = self._run(
            str(tmp_path), "--baseline", "check", "--baseline-file", str(base), cwd=ROOT
        )
        assert check.returncode == 0, check.stdout + check.stderr
        assert "1 baselined finding suppressed" in check.stderr

    def test_baseline_check_fails_on_new_finding(self, tmp_path):
        (tmp_path / "bad.py").write_text(self.BAD)
        base = tmp_path / "base.json"
        self._run(
            str(tmp_path), "--baseline", "write", "--baseline-file", str(base), cwd=ROOT
        )
        (tmp_path / "worse.py").write_text(self.BAD)
        check = self._run(
            str(tmp_path), "--baseline", "check", "--baseline-file", str(base), cwd=ROOT
        )
        assert check.returncode == 1
        assert "worse.py" in check.stdout
        assert "bad.py" not in check.stdout

    def test_baseline_check_missing_file_is_usage_error(self, tmp_path):
        (tmp_path / "ok.py").write_text("def f(comm, x):\n    return x\n")
        proc = self._run(
            str(tmp_path),
            "--baseline",
            "check",
            "--baseline-file",
            str(tmp_path / "absent.json"),
            cwd=ROOT,
        )
        assert proc.returncode == 2
        assert "cannot read baseline" in proc.stderr

    def test_changed_only_reports_only_changed_files(self, tmp_path):
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", "commit", "-q",
             "--allow-empty", "-m", "seed"],
            cwd=tmp_path,
            check=True,
        )
        (tmp_path / "committed.py").write_text(self.BAD)
        subprocess.run(["git", "add", "committed.py"], cwd=tmp_path, check=True)
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", "commit", "-q",
             "-m", "add file"],
            cwd=tmp_path,
            check=True,
        )
        (tmp_path / "fresh.py").write_text(self.BAD)
        proc = self._run(".", "--changed-only", cwd=tmp_path)
        assert proc.returncode == 1
        assert "fresh.py" in proc.stdout
        assert "committed.py" not in proc.stdout

    def test_nonexistent_path_is_usage_error(self, tmp_path):
        proc = self._run(str(tmp_path / "no_such_dir"), cwd=ROOT)
        assert proc.returncode == 2
        assert "no such file or directory" in proc.stderr

    def test_changed_only_bad_ref_is_usage_error(self, tmp_path):
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        (tmp_path / "ok.py").write_text("def f(comm, x):\n    return x\n")
        proc = self._run(".", "--changed-only=no-such-ref", cwd=tmp_path)
        assert proc.returncode == 2

    def test_list_rules_shows_layers(self):
        proc = self._run("--list-rules", cwd=ROOT)
        assert proc.returncode == 0
        for rule in INTERPROC_RULES:
            assert f"{rule} [inter]" in proc.stdout
        assert "SPMD-DIV-COLLECTIVE [intra]" in proc.stdout
        assert "SPMD-TAG-COLLISION [cross]" in proc.stdout


# ------------------------------------------------------------ baselines


class TestBaselineApi:
    def test_round_trip_and_subtract(self, tmp_path):
        f1 = Finding("a.py", 3, "SPMD-DIV-COLLECTIVE", "msg one")
        f2 = Finding("b.py", 9, "SPMD-ESCAPED-REQUEST", "msg two")
        path = tmp_path / "base.json"
        assert write_baseline([f1, f2, f1], path) == 2
        accepted = load_baseline(path)
        new, suppressed = subtract_baseline([f1, f2], accepted)
        assert new == [] and suppressed == 2
        moved = Finding("a.py", 4, "SPMD-DIV-COLLECTIVE", "msg one")
        new, suppressed = subtract_baseline([moved], accepted)
        assert new == [moved] and suppressed == 0

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text('{"schema": 999, "findings": []}')
        with pytest.raises(ValueError):
            load_baseline(path)


# ------------------------------------------------------------------ SARIF


class TestSarifWholeProgram:
    def test_related_locations_and_rule_metadata(self):
        from repro.analyze.sarif import to_sarif

        finding = Finding(
            "use.py",
            5,
            "SPMD-INTERPROC-DIV-COLLECTIVE",
            "call to 'sync()' ... issues collective 'comm.barrier()' at lib.py:2",
            related=(("lib.py", 2),),
        )
        doc = to_sarif([finding])
        run = doc["runs"][0]
        rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        for rule in INTERPROC_RULES:
            assert rules[rule]["properties"]["layer"] == "inter"
        assert rules["SPMD-DIV-COLLECTIVE"]["properties"]["layer"] == "intra"
        (result,) = run["results"]
        assert result["ruleId"] == "SPMD-INTERPROC-DIV-COLLECTIVE"
        primary = result["locations"][0]["physicalLocation"]
        assert primary["artifactLocation"]["uri"] == "use.py"
        assert primary["region"]["startLine"] == 5
        (related,) = result["relatedLocations"]
        rel = related["physicalLocation"]
        assert rel["artifactLocation"]["uri"] == "lib.py"
        assert rel["region"]["startLine"] == 2

    def test_intra_results_have_no_related_locations(self):
        from repro.analyze.sarif import to_sarif

        doc = to_sarif([Finding("a.py", 1, "SPMD-WALLCLOCK", "msg")])
        (result,) = doc["runs"][0]["results"]
        assert "relatedLocations" not in result
