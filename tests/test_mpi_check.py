"""Runtime verification layer (``check=True``): congruence, deadlock,
finalize accounting, request idempotency, and clock invariance."""

import numpy as np
import pytest

from repro.data import make_partition
from repro.mpi import (
    Aborted,
    CollectiveMismatchError,
    DeadlockError,
    MessageLeakError,
    SPMDError,
    run_spmd,
)


def _failure_types(excinfo):
    return {type(e) for e in excinfo.value.failures.values()}


class TestCollectiveCongruence:
    def test_mismatched_op_names(self):
        def prog(comm):
            if comm.rank == 0:
                return comm.bcast(1, root=0)  # spmd: ignore[DIV-COLLECTIVE]
            return comm.allreduce(1)  # spmd: ignore[DIV-COLLECTIVE]

        with pytest.raises(SPMDError) as ei:
            run_spmd(2, prog, check=True, timeout=30)
        assert CollectiveMismatchError in _failure_types(ei)
        msg = str(ei.value.__cause__)
        # Both ranks' call sites are named in the diagnosis.
        assert "bcast" in msg and "allreduce" in msg
        assert msg.count("test_mpi_check.py") == 2

    def test_mismatched_bcast_root(self):
        def prog(comm):
            return comm.bcast(comm.rank, root=0 if comm.rank == 0 else 1)

        with pytest.raises(SPMDError) as ei:
            run_spmd(2, prog, check=True, timeout=30)
        assert CollectiveMismatchError in _failure_types(ei)
        assert "root=0" in str(ei.value.__cause__)
        assert "root=1" in str(ei.value.__cause__)

    def test_congruent_run_is_clean(self):
        def prog(comm):
            x = comm.allreduce(comm.rank)
            comm.barrier()
            return comm.bcast(x, root=0)

        assert run_spmd(4, prog, check=True, timeout=30) == [6, 6, 6, 6]


class TestDeadlockDetection:
    def test_recv_recv_cycle(self):
        def prog(comm):
            peer = 1 - comm.rank
            got = comm.recv(source=peer, tag=7)  # spmd: ignore[TAG-COLLISION]
            comm.send(comm.rank, peer, tag=7)  # spmd: ignore[TAG-COLLISION]
            return got

        with pytest.raises(SPMDError) as ei:
            run_spmd(2, prog, check=True, timeout=30)
        assert DeadlockError in _failure_types(ei)
        msg = str(ei.value.__cause__)
        assert "wait-for cycle" in msg
        assert "rank 0" in msg and "rank 1" in msg

    def test_mismatched_barrier(self):
        # Rank 1 never reaches the barrier: rank 0 waits forever.
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()  # spmd: ignore[SPMD-DIV-COLLECTIVE]
            return comm.rank

        with pytest.raises(SPMDError) as ei:
            run_spmd(2, prog, check=True, timeout=30)
        assert DeadlockError in _failure_types(ei)
        msg = str(ei.value.__cause__)
        assert "blocked in collective 'barrier'" in msg
        assert "finished rank(s): [1]" in msg

    def test_recv_with_no_sender(self):
        def prog(comm):
            if comm.rank == 0:
                return comm.recv(source=1, tag=3)
            return None

        with pytest.raises(SPMDError) as ei:
            run_spmd(2, prog, check=True, timeout=30)
        assert DeadlockError in _failure_types(ei)
        assert "blocked in recv(source=1, tag=3)" in str(ei.value.__cause__)

    def test_unchecked_still_works(self):
        # Same clean program without the checker: no interference.
        def prog(comm):
            peer = 1 - comm.rank
            return comm.sendrecv(comm.rank, peer, tag=1)  # spmd: ignore[TAG-COLLISION]

        assert run_spmd(2, prog, check=False, timeout=30) == [1, 0]


class TestFinalizeAccounting:
    def test_leak_warns_unchecked(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(b"orphan", 1, tag=9)  # spmd: ignore[TAG-COLLISION]
            return None

        with pytest.warns(RuntimeWarning, match=r"src=0, dest=1, tag=9"):
            run_spmd(2, prog, check=False, timeout=30)

    def test_leak_raises_checked(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(b"orphan", 1, tag=9)  # spmd: ignore[TAG-COLLISION]
            return None

        with pytest.raises(MessageLeakError, match=r"src=0 dest=1 tag=9"):
            with pytest.warns(RuntimeWarning):
                run_spmd(2, prog, check=True, timeout=30)

    def test_pending_irecv_raises_checked(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=4)  # spmd: ignore[UNWAITED-REQUEST]
                del req  # never waited
            return None

        with pytest.raises(MessageLeakError, match=r"never-completed irecv"):
            run_spmd(2, prog, check=True, timeout=30)

    def test_clean_run_no_warning(self, recwarn):
        def prog(comm):
            peer = 1 - comm.rank
            comm.send(comm.rank, peer, tag=2)  # spmd: ignore[TAG-COLLISION]
            return comm.recv(source=peer, tag=2)  # spmd: ignore[TAG-COLLISION]

        assert run_spmd(2, prog, check=True, timeout=30) == [1, 0]
        assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]


class TestRequestIdempotency:
    def test_wait_twice_returns_same_payload(self, run):
        def prog(comm):
            peer = 1 - comm.rank
            req = comm.irecv(source=peer, tag=5)  # spmd: ignore[TAG-COLLISION]
            comm.send({"from": comm.rank}, peer, tag=5)  # spmd: ignore[TAG-COLLISION]
            first = req.wait()
            second = req.wait()  # idempotent: must not re-receive
            assert second is first
            done, payload = req.test()
            assert done and payload is first
            return first["from"]

        assert run(2, prog, check=True, timeout=30) == [1, 0]

    def test_wait_after_abort_is_stable(self):
        # Rank 1 dies; rank 0's wait() aborts — and keeps raising the same
        # error on every retry instead of hanging or returning garbage.
        def prog(comm):
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=6)
                with pytest.raises(Aborted):
                    req.wait()
                with pytest.raises(Aborted):
                    req.wait()
                with pytest.raises(Aborted):
                    req.test()
                return "survived"
            raise ValueError("boom")

        with pytest.raises(SPMDError) as ei:
            run_spmd(2, prog, check=False, timeout=30)
        assert set(ei.value.failures) == {1}


class TestFailurePropagation:
    def test_abort_mid_collective_propagates(self):
        # Rank 0 raises while the others sit in a barrier; they must be
        # released as secondary casualties, not report their own failures.
        def prog(comm):
            if comm.rank == 0:
                raise ValueError("primary failure")
            comm.barrier()  # spmd: ignore[SPMD-DIV-COLLECTIVE]
            return None

        with pytest.raises(SPMDError) as ei:
            run_spmd(4, prog, check=True, timeout=30)
        assert set(ei.value.failures) == {0}
        assert isinstance(ei.value.failures[0], ValueError)

    def test_spmd_error_carries_every_failing_rank(self):
        # No communication before the raise: no rank can be demoted to a
        # secondary Aborted casualty, so every failure must be reported.
        def prog(comm):
            raise ValueError(f"rank {comm.rank} failed")

        with pytest.raises(SPMDError) as ei:
            run_spmd(3, prog, check=True, timeout=30)
        assert set(ei.value.failures) == {0, 1, 2}
        for r, exc in ei.value.failures.items():
            assert str(exc) == f"rank {r} failed"


class TestClockInvariance:
    def test_checked_run_is_bit_identical(self):
        """Acceptance: 16-rank histogram sort, check on vs off, same clocks."""
        from repro.core import histogram_sort

        def prog(comm):
            local = make_partition("uniform_u64", 2000, rank=comm.rank, seed=11)
            res = histogram_sort(comm, local)
            return float(res.output[0]) if res.output.size else None

        clocks = {}
        for check in (False, True):
            _, rt = run_spmd(16, prog, check=check, return_runtime=True, timeout=60)
            clocks[check] = rt.clocks.copy()
        assert np.array_equal(clocks[False], clocks[True])
        assert clocks[True].dtype == np.float64
