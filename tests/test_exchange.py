"""Exchange plan (Algorithm 4) + ALL-TO-ALLV tests."""

import numpy as np
import pytest

from repro.core import build_exchange_plan, exchange, find_splitters


def _plan_and_exchange(run, parts, caps=None, eps=0.0):
    p = len(parts)

    def prog(comm):
        work = np.sort(parts[comm.rank])
        splitters = find_splitters(comm, work, capacities=caps, eps=eps)
        plan = build_exchange_plan(comm, work, splitters)
        received = exchange(comm, work, plan)
        return plan, received

    return run(p, prog)


class TestExchangePlan:
    def test_counts_conserve_elements(self, run, rng):
        parts = [rng.integers(0, 10**6, 1000).astype(np.int64) for _ in range(4)]
        out = _plan_and_exchange(run, parts)
        send_total = sum(p.elements_sent for p, _ in out)
        recv_total = sum(p.elements_received for p, _ in out)
        assert send_total == recv_total == 4000

    def test_send_recv_matrices_transpose(self, run, rng):
        parts = [rng.integers(0, 10**6, 500).astype(np.int64) for _ in range(4)]
        out = _plan_and_exchange(run, parts)
        send = np.stack([p.send_counts for p, _ in out])   # [src, dst]
        recv = np.stack([p.recv_counts for p, _ in out])   # [dst, src]
        assert np.array_equal(send.T, recv)

    def test_perfect_partitioning_sizes(self, run, rng):
        parts = [rng.integers(0, 10**6, n).astype(np.int64) for n in (700, 0, 1300, 400)]
        out = _plan_and_exchange(run, parts)
        for (plan, _), part in zip(out, parts):
            assert plan.elements_received == part.size

    def test_cuts_monotone_and_cover(self, run, rng):
        parts = [rng.integers(0, 50, 800).astype(np.int64) for _ in range(5)]
        out = _plan_and_exchange(run, parts)
        for (plan, _), part in zip(out, parts):
            assert plan.cuts[0] == 0
            assert plan.cuts[-1] == part.size
            assert np.all(np.diff(plan.cuts) >= 0)

    def test_received_chunks_sorted(self, run, rng):
        parts = [rng.normal(size=600) for _ in range(4)]
        out = _plan_and_exchange(run, parts)
        for _, received in out:
            for chunk in received:
                assert np.all(chunk[:-1] <= chunk[1:])

    def test_chunk_ranges_respect_splitters(self, run, rng):
        """Everything received by rank i is <= everything received by i+1."""
        parts = [rng.integers(0, 10**6, 900).astype(np.int64) for _ in range(4)]
        out = _plan_and_exchange(run, parts)
        maxima, minima = [], []
        for _, received in out:
            allv = np.concatenate([c for c in received if c.size])
            maxima.append(allv.max())
            minima.append(allv.min())
        for i in range(3):
            assert maxima[i] <= minima[i + 1]

    def test_duplicate_run_split_by_rank_order(self, run):
        """A duplicate run straddling a boundary is split exactly."""
        parts = [np.full(100, 5, dtype=np.int64), np.full(100, 5, dtype=np.int64)]
        out = _plan_and_exchange(run, parts)
        assert out[0][0].elements_received == 100
        assert out[1][0].elements_received == 100

    def test_single_rank_plan(self, run, rng):
        parts = [rng.normal(size=50)]
        out = _plan_and_exchange(run, parts)
        plan, received = out[0]
        assert plan.send_counts.tolist() == [50]
        assert received[0].size == 50

    def test_custom_capacities_move_everything(self, run, rng):
        parts = [rng.integers(0, 100, 500).astype(np.int64) for _ in range(4)]
        caps = [2000, 0, 0, 0]
        out = _plan_and_exchange(run, parts, caps=caps)
        sizes = [p.elements_received for p, _ in out]
        assert sizes == [2000, 0, 0, 0]

    def test_eps_relaxed_sizes_within_slack(self, run, rng):
        parts = [rng.integers(0, 10**9, 4000).astype(np.uint64) for _ in range(4)]
        eps = 0.05
        out = _plan_and_exchange(run, parts, eps=eps)
        tol = 2 * int(np.floor(eps * 16000 / 8))
        for plan, _ in out:
            assert abs(plan.elements_received - 4000) <= tol
