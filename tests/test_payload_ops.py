"""Payload copying/sizing and reduction operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM
from repro.mpi.payload import copy_payload, payload_nbytes


class TestCopyPayload:
    def test_scalars_pass_through(self):
        for v in (None, True, 3, 2.5, "s", b"b", np.int64(7)):
            assert copy_payload(v) is v or copy_payload(v) == v

    def test_ndarray_copied(self):
        a = np.arange(3)
        b = copy_payload(a)
        b[0] = 99
        assert a[0] == 0

    def test_nested_containers(self):
        src = {"k": [np.zeros(2), (1, np.ones(1))]}
        dst = copy_payload(src)
        dst["k"][0][0] = 5
        assert src["k"][0][0] == 0

    def test_tuple_stays_tuple(self):
        assert isinstance(copy_payload((1, 2)), tuple)


class TestPayloadNbytes:
    def test_ndarray_exact(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_bytes_and_str(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes("abcd") == 4

    def test_none_is_zero(self):
        assert payload_nbytes(None) == 0

    def test_numbers(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(2.5) == 8
        assert payload_nbytes(True) == 1

    def test_containers_sum(self):
        assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 40 + 8

    def test_unknown_object_default(self):
        class Thing:
            pass

        assert payload_nbytes(Thing()) == 64


class TestReduceOps:
    def test_sum_prod_minmax_scalars(self):
        assert SUM(2, 3) == 5
        assert PROD(2, 3) == 6
        assert MIN(2, 3) == 2
        assert MAX(2, 3) == 3

    def test_logical(self):
        assert LAND(True, False) is False
        assert LOR(True, False) is True

    def test_arrays_elementwise(self):
        a, b = np.array([1, 5]), np.array([4, 2])
        assert np.array_equal(MIN(a, b), [1, 2])
        assert np.array_equal(MAX(a, b), [4, 5])
        assert np.array_equal(SUM(a, b), [5, 7])

    def test_tuples_recursive(self):
        assert SUM((1, (2, 3)), (10, (20, 30))) == (11, (22, 33))

    def test_tuple_length_mismatch(self):
        with pytest.raises(ValueError):
            SUM((1, 2), (1,))

    def test_minloc_maxloc(self):
        assert MINLOC((3, 0), (1, 2)) == (1, 2)
        assert MINLOC((1, 0), (1, 2)) == (1, 0)  # tie -> lower loc
        assert MAXLOC((3, 0), (5, 2)) == (5, 2)
        assert MAXLOC((5, 0), (5, 2)) == (5, 0)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_fold_matches_python(self, xs):
        import functools

        assert functools.reduce(SUM, xs) == sum(xs)
        assert functools.reduce(MIN, xs) == min(xs)
        assert functools.reduce(MAX, xs) == max(xs)
