"""Histogram search helpers and output-contract checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq import (
    balance_violation,
    check_sorted_output,
    counts_between,
    is_globally_sorted,
    is_permutation,
    is_sorted,
    local_histogram,
    rank_of,
)


class TestLocalHistogram:
    def test_bounds_semantics(self):
        part = np.array([1, 3, 3, 5, 9])
        lo, up = local_histogram(part, np.array([0, 3, 5, 10]))
        assert lo.tolist() == [0, 1, 3, 5]  # strictly below
        assert up.tolist() == [0, 3, 4, 5]  # at or below

    def test_empty_partition(self):
        lo, up = local_histogram(np.array([]), np.array([1, 2]))
        assert lo.tolist() == [0, 0]
        assert up.tolist() == [0, 0]

    def test_empty_probes(self):
        lo, up = local_histogram(np.arange(5), np.array([]))
        assert lo.size == 0 and up.size == 0

    def test_rank_of(self):
        part = np.array([2, 2, 4])
        assert rank_of(part, 2) == (0, 2)
        assert rank_of(part, 3) == (2, 2)

    def test_counts_between(self):
        part = np.array([1, 2, 3, 4, 5])
        assert counts_between(part, 1, 5) == 3  # open interval
        assert counts_between(part, 0, 6) == 5
        assert counts_between(part, 3, 3) == 0

    @given(
        part=st.lists(st.integers(0, 20), max_size=60).map(sorted),
        probes=st.lists(st.integers(-5, 25), max_size=10),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_counting(self, part, probes):
        arr = np.array(part, dtype=np.int64)
        pr = np.array(probes, dtype=np.int64)
        lo, up = local_histogram(arr, pr)
        for i, v in enumerate(probes):
            assert lo[i] == np.count_nonzero(arr < v)
            assert up[i] == np.count_nonzero(arr <= v)


class TestChecks:
    def test_is_sorted(self):
        assert is_sorted(np.array([1, 1, 2]))
        assert not is_sorted(np.array([2, 1]))
        assert is_sorted(np.array([]))
        assert is_sorted(np.array([5]))

    def test_globally_sorted_ok(self):
        assert is_globally_sorted([np.array([1, 2]), np.array([2, 3]), np.array([])])

    def test_globally_sorted_boundary_violation(self):
        assert not is_globally_sorted([np.array([1, 5]), np.array([4, 6])])

    def test_globally_sorted_local_violation(self):
        assert not is_globally_sorted([np.array([2, 1])])

    def test_globally_sorted_with_empty_middle(self):
        assert is_globally_sorted([np.array([1]), np.array([]), np.array([2])])

    def test_permutation(self):
        ins = [np.array([3, 1]), np.array([2])]
        outs = [np.array([1, 2]), np.array([3])]
        assert is_permutation(ins, outs)
        assert not is_permutation(ins, [np.array([1, 2]), np.array([4])])
        assert not is_permutation(ins, [np.array([1, 2])])

    def test_permutation_both_empty(self):
        assert is_permutation([np.array([])], [])

    def test_balance_violation_perfect(self):
        assert balance_violation([10, 10], [10, 10], eps=0.0) == 0
        assert balance_violation([11, 9], [10, 10], eps=0.0) == 1

    def test_balance_violation_with_eps(self):
        # tol per boundary = eps*N/(2P); size slack = 2*tol
        n, p, eps = 1000, 2, 0.1
        slack = 2 * int(eps * n / (2 * p))  # 50
        assert balance_violation([500 + slack, 500 - slack], [500, 500], eps) == 0
        assert balance_violation([500 + slack + 1, 500 - slack - 1], [500, 500], eps) == 1

    def test_balance_shape_mismatch(self):
        with pytest.raises(ValueError):
            balance_violation([1], [1, 2], 0.0)

    def test_check_sorted_output_passes(self):
        ins = [np.array([3, 1]), np.array([2, 0])]
        outs = [np.array([0, 1]), np.array([2, 3])]
        check_sorted_output(ins, outs)

    def test_check_sorted_output_raises(self):
        ins = [np.array([3, 1]), np.array([2, 0])]
        bad = [np.array([2, 3]), np.array([0, 1])]
        with pytest.raises(AssertionError):
            check_sorted_output(ins, bad)
