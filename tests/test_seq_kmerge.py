"""K-way merge kernels: unit + property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq import (
    LoserTree,
    binary_merge_tree,
    kway_merge,
    loser_tree_merge,
    merge_two_sorted,
)

sorted_runs = st.lists(
    st.lists(st.integers(0, 40), max_size=50).map(sorted),
    min_size=1,
    max_size=9,
)


class TestMergeTwo:
    def test_basic(self):
        out = merge_two_sorted(np.array([1, 3, 5]), np.array([2, 4, 6]))
        assert out.tolist() == [1, 2, 3, 4, 5, 6]

    def test_empty_sides(self):
        a = np.array([1, 2])
        assert merge_two_sorted(a, np.array([])).tolist() == [1, 2]
        assert merge_two_sorted(np.array([]), a).tolist() == [1, 2]
        assert merge_two_sorted(np.array([]), np.array([])).size == 0

    def test_disjoint_ranges(self):
        out = merge_two_sorted(np.array([10, 11]), np.array([1, 2]))
        assert out.tolist() == [1, 2, 10, 11]

    def test_all_ties(self):
        out = merge_two_sorted(np.full(3, 5), np.full(4, 5))
        assert out.tolist() == [5] * 7

    def test_returns_copy(self):
        a = np.array([1, 2])
        out = merge_two_sorted(a, np.array([]))
        out[0] = 99
        assert a[0] == 1

    @given(
        a=st.lists(st.integers(-30, 30), max_size=60).map(sorted),
        b=st.lists(st.integers(-30, 30), max_size=60).map(sorted),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_numpy(self, a, b):
        out = merge_two_sorted(np.array(a, dtype=np.int64), np.array(b, dtype=np.int64))
        ref = np.sort(np.concatenate([a, b]).astype(np.int64)) if a or b else np.empty(0)
        assert np.array_equal(out, ref)


class TestLoserTree:
    def test_single_run(self):
        t = LoserTree([np.array([1, 2, 3])])
        assert [t.pop() for _ in range(3)] == [1, 2, 3]

    def test_interleaved_runs(self):
        t = LoserTree([np.array([1, 4, 7]), np.array([2, 5, 8]), np.array([3, 6, 9])])
        assert [t.pop() for _ in range(9)] == list(range(1, 10))

    def test_len_tracks_remaining(self):
        t = LoserTree([np.array([1]), np.array([2, 3])])
        assert len(t) == 3
        t.pop()
        assert len(t) == 2

    def test_pop_exhausted_raises(self):
        t = LoserTree([np.array([1])])
        t.pop()
        with pytest.raises(IndexError):
            t.pop()

    def test_empty_runs_mixed_in(self):
        t = LoserTree([np.array([]), np.array([2, 4]), np.array([]), np.array([1])])
        assert [t.pop() for _ in range(3)] == [1, 2, 4]

    def test_no_runs_rejected(self):
        with pytest.raises(ValueError):
            LoserTree([])

    def test_stability_ties_by_run_order(self):
        # ties pop from the lower-numbered run first
        t = LoserTree([np.array([5.0]), np.array([5.0])])
        t._runs  # internal: pop order checked through count only
        assert t.pop() == 5.0 and t.pop() == 5.0


def _drain_per_element(runs):
    tree = LoserTree(runs)
    out = np.empty(len(tree), dtype=np.result_type(*runs))
    for i in range(out.size):
        out[i] = tree.pop()
    return out


class TestPopRun:
    """The chunked drain must be byte-identical to element-wise pop."""

    def test_chunks_cover_disjoint_runs_in_two_slices(self):
        t = LoserTree([np.array([1, 2, 3]), np.array([10, 11])])
        first = t.pop_run()
        assert first.tolist() == [1, 2, 3]
        assert t.pop_run().tolist() == [10, 11]
        assert len(t) == 0

    def test_ties_split_by_run_order(self):
        # run 0 emits through the tie (lower index wins equal heads);
        # run 1 then runs unchallenged until run 0's remaining 9
        t = LoserTree([np.array([5, 5, 9]), np.array([5, 6])])
        assert t.pop_run().tolist() == [5, 5]
        assert t.pop_run().tolist() == [5, 6]
        assert t.pop_run().tolist() == [9]

    def test_exhausted_raises(self):
        t = LoserTree([np.array([1])])
        t.pop_run()
        with pytest.raises(IndexError):
            t.pop_run()

    def test_interleaving_pop_and_pop_run(self):
        runs = [np.array([1, 4, 7]), np.array([2, 5, 8]), np.array([3, 6, 9])]
        t = LoserTree(runs)
        seq = [t.pop(), *t.pop_run().tolist(), t.pop()]
        while len(t):
            seq.extend(t.pop_run().tolist())
        assert seq == list(range(1, 10))

    @given(runs=sorted_runs)
    @settings(max_examples=100, deadline=None)
    def test_byte_identical_to_pop(self, runs):
        arrays = [np.array(r, dtype=np.int64) for r in runs if r]
        if not arrays:
            return
        ref = _drain_per_element(arrays)
        out = loser_tree_merge(arrays)
        assert out.dtype == ref.dtype
        assert out.tobytes() == ref.tobytes()

    def test_byte_identical_on_floats_with_dupes(self, rng):
        arrays = [
            np.sort(rng.choice([0.5, 1.5, 1.5, 2.5, np.inf], size=40))
            for _ in range(5)
        ]
        assert loser_tree_merge(arrays).tobytes() == _drain_per_element(arrays).tobytes()

    def test_adaptive_fallback_crosses_probe_windows(self, rng):
        # fine interleave large enough to trigger the element-mode backoff
        arrays = [
            np.sort(rng.integers(0, 2**60, size=3000).astype(np.uint64))
            for _ in range(4)
        ]
        ref = np.sort(np.concatenate(arrays))
        assert np.array_equal(loser_tree_merge(arrays), ref)


class TestKwayMerge:
    @pytest.mark.parametrize("strategy", ["binary_tree", "tournament", "sort"])
    def test_empty_input(self, strategy):
        assert kway_merge([], strategy).size == 0

    @pytest.mark.parametrize("strategy", ["binary_tree", "tournament", "sort"])
    def test_single_run(self, strategy):
        out = kway_merge([np.array([3, 4])], strategy)
        assert out.tolist() == [3, 4]

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            kway_merge([np.array([1])], "bogus")

    @given(runs=sorted_runs)
    @settings(max_examples=80, deadline=None)
    def test_strategies_agree_with_sort(self, runs):
        arrays = [np.array(r, dtype=np.int64) for r in runs]
        nonempty = [a for a in arrays if a.size]
        ref = (
            np.sort(np.concatenate(nonempty))
            if nonempty
            else np.empty(0, dtype=np.int64)
        )
        for strategy in ("binary_tree", "tournament", "sort"):
            out = kway_merge(arrays, strategy)
            assert np.array_equal(out, ref), strategy

    def test_many_runs(self, rng):
        runs = [np.sort(rng.integers(0, 1000, rng.integers(0, 50))) for _ in range(33)]
        ref = np.sort(np.concatenate(runs))
        assert np.array_equal(binary_merge_tree(runs), ref)
        assert np.array_equal(loser_tree_merge(runs), ref)

    def test_float_dtype_preserved(self):
        out = binary_merge_tree([np.array([1.5]), np.array([0.5])])
        assert out.dtype == np.float64
        assert out.tolist() == [0.5, 1.5]
