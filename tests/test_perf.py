"""Perf snapshots: suite execution, schema, comparison edge cases, CLI gate."""

from __future__ import annotations

import copy
import json
import math

import pytest

from repro.bench.harness import run_sort_trial
from repro.machine import abstract_cluster
from repro.perf import (
    SCHEMA_VERSION,
    CellSpec,
    SnapshotFormatError,
    compare_snapshots,
    latest_bench_path,
    load_snapshot,
    next_bench_path,
    run_suite,
    write_snapshot,
)
from repro.perf.cli import main as perf_main

QUICK_CELL = "dash/uniform_u64/abstract2/p4"


@pytest.fixture(scope="module")
def quick_snapshot():
    """One quick-suite run, shared across this module's tests."""
    return run_suite("quick", repeats=2, warmup=0, seed0=100, label="base")


def _doctor(snapshot, cell_id=QUICK_CELL, factor=2.0):
    """A deep copy with one cell's measurements scaled by ``factor``."""
    doc = copy.deepcopy(snapshot)
    cell = doc["cells"][cell_id]
    for key in ("median_s", "ci_low_s", "ci_high_s"):
        cell["measured"][key] *= factor
    cell["measured"]["values_s"] = [v * factor for v in cell["measured"]["values_s"]]
    cell["phases_s"] = {k: v * factor for k, v in cell["phases_s"].items()}
    doc["label"] = "doctored"
    return doc


class TestSuite:
    def test_snapshot_document_shape(self, quick_snapshot):
        doc = quick_snapshot
        assert doc["kind"] == "repro-perf-snapshot"
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["suite"] == "quick"
        assert set(doc["cells"]) == {QUICK_CELL, "hss/uniform_u64/abstract2/p4"}
        cell = doc["cells"][QUICK_CELL]
        measured = cell["measured"]
        assert measured["ci_low_s"] <= measured["median_s"] <= measured["ci_high_s"]
        assert len(measured["values_s"]) == 2
        assert set(cell["phases_s"]) >= {"local_sort", "splitting", "exchange", "merge"}
        assert cell["rounds"] >= 1

    def test_model_attribution_present(self, quick_snapshot):
        cell = quick_snapshot["cells"][QUICK_CELL]
        assert cell["modelled"]["total_s"] > 0
        assert set(cell["modelled"]["phases_s"]) == {
            "local_sort", "splitting", "exchange", "merge", "other",
        }
        err = cell["model_error"]
        assert err["time_scale"] > 0
        assert err["per_phase_ratio"]["exchange"] > 0

    def test_traffic_from_metrics_registry(self, quick_snapshot):
        traffic = quick_snapshot["cells"][QUICK_CELL]["traffic"]
        assert traffic["wire_bytes_per_run"] > 0
        assert traffic["messages_per_run"] > 0
        assert traffic["collective_calls_per_run"]["alltoallv"] >= 1

    def test_sim_overhead_recorded(self, quick_snapshot):
        sim = quick_snapshot["cells"][QUICK_CELL]["sim"]
        assert sim["wall_s_per_run"] > 0
        assert sim["peak_rss_bytes"] > 0

    def test_deterministic_measurements(self, quick_snapshot):
        again = run_suite("quick", repeats=2, warmup=0, seed0=100, label="again")
        for cell_id, cell in quick_snapshot["cells"].items():
            assert (
                again["cells"][cell_id]["measured"]["values_s"]
                == cell["measured"]["values_s"]
            )

    def test_unknown_suite_and_preset(self):
        with pytest.raises(KeyError):
            run_suite("nope")
        with pytest.raises(KeyError):
            CellSpec("dash", "uniform_u64", "nope", p=2, n_per_rank=64).machine()


class TestPersistence:
    def test_write_load_roundtrip(self, quick_snapshot, tmp_path):
        path = write_snapshot(quick_snapshot, tmp_path / "BENCH_0001.json")
        loaded = load_snapshot(path)
        assert loaded["label"] == "base"  # explicit label wins over stem
        assert loaded["cells"].keys() == quick_snapshot["cells"].keys()

    def test_label_defaults_to_stem(self, quick_snapshot, tmp_path):
        doc = dict(quick_snapshot, label=None)
        path = write_snapshot(doc, tmp_path / "BENCH_0042.json")
        assert load_snapshot(path)["label"] == "BENCH_0042"

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotFormatError, match="not found"):
            load_snapshot(tmp_path / "BENCH_9999.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "BENCH_0001.json"
        path.write_text("{not json")
        with pytest.raises(SnapshotFormatError, match="not valid JSON"):
            load_snapshot(path)

    def test_wrong_kind(self, tmp_path):
        path = tmp_path / "BENCH_0001.json"
        path.write_text(json.dumps({"kind": "something-else", "schema_version": 1}))
        with pytest.raises(SnapshotFormatError, match="kind"):
            load_snapshot(path)

    def test_schema_version_mismatch(self, quick_snapshot, tmp_path):
        doc = dict(quick_snapshot, schema_version=SCHEMA_VERSION + 1)
        path = tmp_path / "BENCH_0001.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(SnapshotFormatError, match="schema_version"):
            load_snapshot(path)

    def test_bench_numbering(self, quick_snapshot, tmp_path):
        assert latest_bench_path(tmp_path) is None
        assert next_bench_path(tmp_path).name == "BENCH_0001.json"
        write_snapshot(quick_snapshot, tmp_path / "BENCH_0003.json")
        (tmp_path / "BENCH_junk.json").write_text("{}")  # ignored: bad name
        assert latest_bench_path(tmp_path).name == "BENCH_0003.json"
        assert next_bench_path(tmp_path).name == "BENCH_0004.json"


class TestCompare:
    def test_identical_snapshots_pass(self, quick_snapshot):
        comparison = compare_snapshots(quick_snapshot, quick_snapshot)
        assert comparison.ok and comparison.exit_code == 0
        assert all(d.status == "ok" for d in comparison.deltas)

    def test_synthetic_2x_slowdown_is_regression(self, quick_snapshot):
        slow = _doctor(quick_snapshot, factor=2.0)
        comparison = compare_snapshots(slow, quick_snapshot)
        assert comparison.exit_code == 1
        (reg,) = comparison.regressions
        assert reg.cell_id == QUICK_CELL
        assert reg.ratio == pytest.approx(2.0)
        # per-phase attribution: every phase doubled, so deltas are positive
        # and ordered worst-first with shares summing to ~1
        assert reg.attribution
        deltas = [d for _, d, _ in reg.attribution]
        assert deltas == sorted(deltas, reverse=True)
        assert all(d >= 0 for d in deltas)
        assert sum(share for _, _, share in reg.attribution) == pytest.approx(1.0)
        text = comparison.format()
        assert "per-phase attribution" in text and "FAIL" in text

    def test_improvement_detected(self, quick_snapshot):
        fast = _doctor(quick_snapshot, factor=0.4)
        comparison = compare_snapshots(fast, quick_snapshot)
        assert comparison.ok  # improvements never fail the gate
        assert [d.status for d in comparison.deltas].count("improvement") == 1

    def test_within_ci_noise_is_ok(self, quick_snapshot):
        # nudge the median to the CI edge: inside threshold -> ok
        doc = copy.deepcopy(quick_snapshot)
        cell = doc["cells"][QUICK_CELL]["measured"]
        cell["median_s"] = cell["ci_high_s"] * 1.01
        comparison = compare_snapshots(doc, quick_snapshot, threshold=0.05)
        assert comparison.ok

    def test_nan_cell_is_incomparable_and_fails(self, quick_snapshot):
        doc = copy.deepcopy(quick_snapshot)
        doc["cells"][QUICK_CELL]["measured"]["median_s"] = math.nan
        comparison = compare_snapshots(doc, quick_snapshot)
        assert comparison.exit_code == 1
        (bad,) = comparison.incomparable
        assert "NaN" in bad.note

    def test_absent_measurement_is_incomparable(self, quick_snapshot):
        doc = copy.deepcopy(quick_snapshot)
        del doc["cells"][QUICK_CELL]["measured"]
        comparison = compare_snapshots(doc, quick_snapshot)
        assert not comparison.ok

    def test_missing_cell_in_candidate_fails(self, quick_snapshot):
        doc = copy.deepcopy(quick_snapshot)
        del doc["cells"][QUICK_CELL]
        comparison = compare_snapshots(doc, quick_snapshot)
        assert comparison.exit_code == 1
        (bad,) = comparison.incomparable
        assert "missing" in bad.note

    def test_new_only_cell_is_informational(self, quick_snapshot):
        doc = copy.deepcopy(quick_snapshot)
        doc["cells"]["extra/cell/p2"] = copy.deepcopy(doc["cells"][QUICK_CELL])
        comparison = compare_snapshots(doc, quick_snapshot)
        assert comparison.ok
        assert [d.status for d in comparison.deltas].count("new-only") == 1

    def test_nan_baseline_is_incomparable(self, quick_snapshot):
        base = copy.deepcopy(quick_snapshot)
        base["cells"][QUICK_CELL]["measured"]["median_s"] = math.nan
        comparison = compare_snapshots(quick_snapshot, base)
        assert not comparison.ok

    def test_negative_threshold_rejected(self, quick_snapshot):
        with pytest.raises(ValueError):
            compare_snapshots(quick_snapshot, quick_snapshot, threshold=-0.1)


class TestCli:
    def _write(self, doc, path):
        path.write_text(json.dumps(doc))
        return str(path)

    def test_run_writes_next_bench_file(self, tmp_path, capsys):
        code = perf_main([
            "run", "--suite", "quick", "--dir", str(tmp_path),
            "--repeats", "2", "--warmup", "0", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "BENCH_0001.json" in out
        doc = load_snapshot(tmp_path / "BENCH_0001.json")
        assert doc["label"] == "BENCH_0001"

    def test_report(self, quick_snapshot, tmp_path, capsys):
        path = self._write(quick_snapshot, tmp_path / "BENCH_0001.json")
        assert perf_main(["report", path, "--verbose"]) == 0
        out = capsys.readouterr().out
        assert QUICK_CELL in out and "model-vs-measured" in out

    def test_compare_exit_codes(self, quick_snapshot, tmp_path, capsys):
        base = self._write(quick_snapshot, tmp_path / "base.json")
        slow = self._write(_doctor(quick_snapshot), tmp_path / "slow.json")
        assert perf_main(["compare", base, base]) == 0
        capsys.readouterr()
        assert perf_main(["compare", slow, base]) == 1
        out = capsys.readouterr().out
        assert "per-phase attribution" in out

    def test_gate_against_prerecorded_candidate(self, quick_snapshot, tmp_path, capsys):
        write_snapshot(quick_snapshot, tmp_path / "BENCH_0001.json")
        slow = self._write(_doctor(quick_snapshot), tmp_path / "slow.json")
        code = perf_main(["gate", "--dir", str(tmp_path), "--new", slow, "--quiet"])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "per-phase attribution" in out

    def test_gate_fresh_run_passes(self, tmp_path, capsys):
        doc = run_suite("quick", repeats=2, warmup=0, seed0=100)
        write_snapshot(doc, tmp_path / "BENCH_0001.json")
        code = perf_main(["gate", "--dir", str(tmp_path), "--quiet"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_gate_missing_baseline_is_usage_error(self, tmp_path):
        assert perf_main(["gate", "--dir", str(tmp_path)]) == 2
        assert perf_main(["gate", "--baseline", str(tmp_path / "nope.json")]) == 2

    def test_gate_schema_mismatch_is_usage_error(self, quick_snapshot, tmp_path):
        doc = dict(quick_snapshot, schema_version=SCHEMA_VERSION + 99)
        self._write(doc, tmp_path / "BENCH_0001.json")
        assert perf_main(["gate", "--dir", str(tmp_path), "--quiet"]) == 2

    def test_unknown_suite_is_usage_error(self, tmp_path):
        assert perf_main(["run", "--suite", "nope", "--dir", str(tmp_path)]) == 2


class TestHarnessExtras:
    def test_trial_extra_has_sim_overhead_and_traffic(self):
        trial = run_sort_trial(
            4, 256, algo="dash", machine=abstract_cluster(1, cores_per_node=4)
        )
        assert trial.extra["wall_s"] > 0
        assert trial.extra["peak_rss_bytes"] > 0
        assert trial.extra["msgs_sent"] >= 0
        assert trial.extra["wire_bytes"] >= trial.extra["bytes_sent"]
        assert trial.extra["collective_calls"] >= 1
