"""Workload generators and partition layouts."""

import numpy as np
import pytest

from repro.data import (
    DISTRIBUTIONS,
    balanced_sizes,
    block_sizes,
    geometric_sizes,
    make_partition,
    single_holder_sizes,
    sparse_sizes,
    uniform_u64,
)


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_size_and_determinism(self, name):
        a = make_partition(name, 500, rank=3, seed=42)
        b = make_partition(name, 500, rank=3, seed=42)
        assert a.shape == (500,)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_rank_independence(self, name):
        if name == "all_equal_i64":
            pytest.skip("degenerate by design")
        a = make_partition(name, 500, rank=0, seed=42)
        b = make_partition(name, 500, rank=1, seed=42)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_empty(self, name):
        assert make_partition(name, 0, rank=0).size == 0

    def test_uniform_range_and_dtype(self):
        x = uniform_u64(10000, seed=1)
        assert x.dtype == np.uint64
        assert x.min() >= 0 and x.max() <= 10**9

    def test_normal_dtype(self):
        assert make_partition("normal_f64", 10).dtype == np.float64
        assert make_partition("normal_f32", 10).dtype == np.float32

    def test_duplicates_distinct_count(self):
        x = make_partition("duplicates_i64", 5000, distinct=3)
        assert np.unique(x).size <= 3

    def test_all_equal(self):
        x = make_partition("all_equal_i64", 100, value=9)
        assert np.all(x == 9)

    def test_nearly_sorted_mostly_in_rank_range(self):
        x = make_partition("nearly_sorted_i64", 1000, rank=2, swap_fraction=0.01)
        in_range = np.count_nonzero((x >= 2000) & (x < 3000))
        assert in_range >= 980

    def test_zipf_skew(self):
        x = make_partition("zipf_u64", 10000, seed=5)
        # heavy head: the most common value covers a large share
        _, counts = np.unique(x, return_counts=True)
        assert counts.max() > 0.3 * x.size

    def test_unknown_distribution(self):
        with pytest.raises(KeyError):
            make_partition("nope", 10)


class TestPartitionLayouts:
    def test_balanced_sums_and_spread(self):
        sizes = balanced_sizes(10, 3)
        assert sizes.sum() == 10
        assert sizes.max() - sizes.min() <= 1

    def test_balanced_zero_total(self):
        assert balanced_sizes(0, 4).sum() == 0

    def test_block(self):
        assert block_sizes(7, 3).tolist() == [7, 7, 7]

    def test_geometric_decreasing(self):
        sizes = geometric_sizes(10000, 5, ratio=0.5)
        assert sizes.sum() == 10000
        assert all(sizes[i] >= sizes[i + 1] for i in range(4))

    def test_geometric_ratio_validation(self):
        with pytest.raises(ValueError):
            geometric_sizes(10, 2, ratio=0.0)

    def test_sparse_every_other(self):
        sizes = sparse_sizes(1000, 6, every=2)
        assert sizes.sum() == 1000
        assert sizes[1] == sizes[3] == sizes[5] == 0
        assert sizes[0] > 0

    def test_single_holder(self):
        sizes = single_holder_sizes(500, 4, holder=2)
        assert sizes.tolist() == [0, 0, 500, 0]

    def test_single_holder_validation(self):
        with pytest.raises(IndexError):
            single_holder_sizes(10, 2, holder=5)

    def test_balanced_validation(self):
        with pytest.raises(ValueError):
            balanced_sizes(10, 0)
