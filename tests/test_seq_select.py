"""Selection kernels vs the NumPy oracle, including property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.seq import floyd_rivest, median_of_medians, nsmallest_value, quickselect

ALGOS = [quickselect, median_of_medians, floyd_rivest, nsmallest_value]


@pytest.mark.parametrize("select", ALGOS, ids=lambda f: f.__name__)
class TestSelectionBasics:
    def test_singleton(self, select):
        assert select(np.array([42]), 0) == 42

    def test_two_elements(self, select):
        x = np.array([5, 3])
        assert select(x, 0) == 3
        assert select(x, 1) == 5

    def test_sorted_input(self, select):
        x = np.arange(100)
        for k in (0, 1, 50, 98, 99):
            assert select(x, k) == k

    def test_reverse_sorted(self, select):
        x = np.arange(100)[::-1].copy()
        assert select(x, 10) == 10

    def test_all_equal(self, select):
        x = np.full(257, 7)
        assert select(x, 0) == 7
        assert select(x, 128) == 7
        assert select(x, 256) == 7

    def test_heavy_duplicates(self, select, rng):
        x = rng.integers(0, 3, 1000)
        ref = np.sort(x)
        for k in (0, 250, 500, 750, 999):
            assert select(x, k) == ref[k]

    def test_floats(self, select, rng):
        x = rng.normal(size=777)
        ref = np.sort(x)
        for k in (0, 388, 776):
            assert select(x, k) == ref[k]

    def test_large_uniform(self, select, rng):
        x = rng.integers(0, 10**9, 20000).astype(np.uint64)
        ref = np.sort(x)
        for k in (0, 9999, 19999):
            assert select(x, k) == ref[k]

    def test_does_not_mutate_input(self, select, rng):
        x = rng.normal(size=500)
        before = x.copy()
        select(x, 250)
        assert np.array_equal(x, before)

    def test_k_out_of_range(self, select):
        with pytest.raises(IndexError):
            select(np.arange(5), 5)
        with pytest.raises(IndexError):
            select(np.arange(5), -1)

    def test_empty_rejected(self, select):
        with pytest.raises(ValueError):
            select(np.array([]), 0)

    def test_2d_rejected(self, select):
        with pytest.raises(ValueError):
            select(np.zeros((2, 2)), 0)


class TestSelectionProperties:
    @given(
        xs=hnp.arrays(np.int64, st.integers(1, 300), elements=st.integers(-1000, 1000)),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_quickselect_matches_sort(self, xs, data):
        k = data.draw(st.integers(0, len(xs) - 1))
        assert quickselect(xs, k) == np.sort(xs)[k]

    @given(
        xs=hnp.arrays(np.int64, st.integers(1, 200), elements=st.integers(-50, 50)),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_median_of_medians_matches_sort(self, xs, data):
        k = data.draw(st.integers(0, len(xs) - 1))
        assert median_of_medians(xs, k) == np.sort(xs)[k]

    @given(
        xs=hnp.arrays(
            np.float64,
            st.integers(1, 400),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        ),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_floyd_rivest_matches_sort(self, xs, data):
        k = data.draw(st.integers(0, len(xs) - 1))
        assert floyd_rivest(xs, k) == np.sort(xs)[k]

    def test_floyd_rivest_beyond_cutoff(self, rng):
        # exercise the sampling path (> 600 elements)
        x = rng.normal(size=50_000)
        ref = np.sort(x)
        for k in (0, 25_000, 49_999):
            assert floyd_rivest(x, k) == ref[k]

    def test_quickselect_deterministic_given_rng(self, rng):
        x = rng.normal(size=5000)
        r1 = quickselect(x, 1234, rng=np.random.default_rng(1))
        r2 = quickselect(x, 1234, rng=np.random.default_rng(1))
        assert r1 == r2
