"""Static SPMD lint: one fixture per rule, suppression, CLI, repo hygiene."""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analyze import analyze_paths, analyze_source
from repro.analyze.astlint import analyze_modules, module_from_source


def findings_for(src, rule=None, modname="fixture"):
    out = analyze_source(textwrap.dedent(src), path="fixture.py", modname=modname)
    if rule is None:
        return out
    return [f for f in out if f.rule == rule]


class TestDivergentCollective:
    RULE = "SPMD-DIV-COLLECTIVE"

    def test_collective_under_rank_branch(self):
        hits = findings_for(
            """
            def f(comm, x):
                if comm.rank == 0:
                    comm.barrier()
            """,
            self.RULE,
        )
        assert len(hits) == 1
        assert "comm.barrier()" in hits[0].message
        assert hits[0].format().startswith("fixture.py:4: SPMD-DIV-COLLECTIVE")

    def test_early_exit_divergence(self):
        # The collective is *after* the if, but only non-zero ranks return
        # early — rank 0 alone reaches the allreduce.
        hits = findings_for(
            """
            def f(comm, x):
                if comm.rank > 0:
                    return None
                comm.allreduce(x)
            """,
            self.RULE,
        )
        assert len(hits) == 1

    def test_taint_through_assignment(self):
        hits = findings_for(
            """
            def f(comm, x):
                me = comm.rank
                odd = me % 2
                for i in range(odd):
                    comm.bcast(x, root=0)
            """,
            self.RULE,
        )
        assert len(hits) == 1

    def test_uniform_condition_is_clean(self):
        assert not findings_for(
            """
            def f(comm, x):
                if x > 3:
                    comm.barrier()
                return comm.allreduce(x)
            """,
            self.RULE,
        )

    def test_split_loop_is_clean(self):
        # The canonical recursive-subcommunicator pattern (hyksort,
        # hyperquicksort): the handle is rank-dependent but collectives on
        # it are congruent within each subcommunicator.
        assert not findings_for(
            """
            def f(comm, x):
                sub = comm
                while sub.size > 1:
                    sub = sub.split(sub.rank % 2, sub.rank)
                    x = sub.allreduce(x)
                return x
            """,
            self.RULE,
        )

    def test_non_comm_function_ignored(self):
        assert not findings_for(
            """
            def helper(rank, x):
                if rank == 0:
                    return x
                return None
            """,
            self.RULE,
        )


class TestUnwaitedRequest:
    RULE = "SPMD-UNWAITED-REQUEST"

    def test_discarded_request(self):
        hits = findings_for(
            """
            def f(comm, x):
                comm.isend(x, 0, tag=5)
            """,
            self.RULE,
        )
        assert len(hits) == 1
        assert "discarded" in hits[0].message

    def test_never_used_request(self):
        hits = findings_for(
            """
            def f(comm, x):
                req = comm.irecv(source=0, tag=5)
                return x
            """,
            self.RULE,
        )
        assert len(hits) == 1
        assert "'req'" in hits[0].message

    def test_waited_request_is_clean(self):
        assert not findings_for(
            """
            def f(comm, x):
                req = comm.irecv(source=0, tag=5)
                comm.send(x, 0, 5)
                return req.wait()
            """,
            self.RULE,
        )

    def test_request_kept_in_list_is_clean(self):
        assert not findings_for(
            """
            def f(comm, x):
                reqs = []
                r = comm.isend(x, 0, tag=5)
                reqs.append(r)
                for r in reqs:
                    r.wait()
            """,
            self.RULE,
        )


class TestBlockingCycle:
    RULE = "SPMD-BLOCKING-CYCLE"

    def test_recv_recv(self):
        hits = findings_for(
            """
            def f(comm, x):
                if comm.rank == 0:
                    y = comm.recv(1)
                    comm.send(x, 1)
                else:
                    y = comm.recv(0)
                    comm.send(x, 0)
                return y
            """,
            self.RULE,
        )
        assert len(hits) == 1
        assert "'recv()'" in hits[0].message

    def test_send_send(self):
        hits = findings_for(
            """
            def f(comm, x):
                if comm.rank % 2 == 0:
                    comm.send(x, comm.rank + 1)
                    y = comm.recv(comm.rank + 1)
                else:
                    comm.send(x, comm.rank - 1)
                    y = comm.recv(comm.rank - 1)
                return y
            """,
            self.RULE,
        )
        assert len(hits) == 1
        assert "rendezvous" in hits[0].message

    def test_ordered_pair_is_clean(self):
        assert not findings_for(
            """
            def f(comm, x):
                if comm.rank == 0:
                    comm.send(x, 1)
                    y = comm.recv(1)
                else:
                    y = comm.recv(0)
                    comm.send(x, 0)
                return y
            """,
            self.RULE,
        )


class TestTagCollision:
    RULE = "SPMD-TAG-COLLISION"

    def test_literal_inside_foreign_namespace(self):
        hits = findings_for(
            """
            def f(comm, x):
                comm.send(x, 0, tag=1000005)
            """,
            self.RULE,
            modname="repro.other.module",
        )
        assert len(hits) == 1
        assert "overlap_round" in hits[0].message

    def test_borrowed_namespace_constant(self):
        hits = findings_for(
            """
            from repro.mpi.tags import OVERLAP_ROUND_BASE

            def f(comm, x):
                comm.send(x, 0, tag=OVERLAP_ROUND_BASE + 3)
            """,
            self.RULE,
            modname="repro.other.module",
        )
        assert len(hits) == 1
        assert "repro.core.overlap" in hits[0].message

    def test_owner_may_use_its_namespace(self):
        assert not findings_for(
            """
            from ..mpi.tags import OVERLAP_ROUND_BASE

            def f(comm, x):
                comm.send(x, 0, tag=OVERLAP_ROUND_BASE + 3)
            """,
            self.RULE,
            modname="repro.core.overlap",
        )

    def test_duplicate_literal_across_modules(self):
        a = module_from_source(
            "def f(comm, x):\n    comm.send(x, 0, tag=42)\n", "a.py", "repro.a"
        )
        b = module_from_source(
            "def g(comm):\n    return comm.recv(0, tag=42)\n", "b.py", "repro.b"
        )
        hits = [f for f in analyze_modules([a, b]) if f.rule == self.RULE]
        assert len(hits) == 2
        assert {f.path for f in hits} == {"a.py", "b.py"}

    def test_same_literal_within_one_module_is_clean(self):
        assert not findings_for(
            """
            def f(comm, x):
                comm.send(x, 0, tag=42)
                return comm.recv(0, tag=42)
            """,
            self.RULE,
        )


class TestWallclock:
    RULE = "SPMD-WALLCLOCK"

    @pytest.mark.parametrize(
        "call",
        [
            "time.time()",
            "time.perf_counter()",
            "random.random()",
            "np.random.rand(4)",
            "np.random.default_rng()",
        ],
    )
    def test_nondeterministic_sources(self, call):
        hits = findings_for(
            f"""
            import time, random
            import numpy as np

            def f(comm, x):
                y = {call}
                return y
            """,
            self.RULE,
        )
        assert len(hits) == 1

    def test_seeded_rng_is_clean(self):
        assert not findings_for(
            """
            import numpy as np

            def f(comm, x, seed):
                rng = np.random.default_rng(seed)
                g = np.random.Generator(np.random.MT19937([seed, comm.rank]))
                return rng.random() + g.random()
            """,
            self.RULE,
        )

    def test_outside_rank_function_ignored(self):
        assert not findings_for(
            """
            import time

            def bench(fn):
                t0 = time.perf_counter()
                fn()
                return time.perf_counter() - t0
            """,
            self.RULE,
        )


class TestSuppression:
    def test_inline_ignore_specific_rule(self):
        assert not findings_for(
            """
            def f(comm, x):
                if comm.rank == 0:
                    comm.barrier()  # spmd: ignore[SPMD-DIV-COLLECTIVE]
            """
        )

    def test_ignore_wrong_rule_does_not_suppress(self):
        hits = findings_for(
            """
            def f(comm, x):
                if comm.rank == 0:
                    comm.barrier()  # spmd: ignore[SPMD-WALLCLOCK]
            """
        )
        assert len(hits) == 1

    def test_bare_ignore_suppresses_all(self):
        assert not findings_for(
            """
            def f(comm, x):
                if comm.rank == 0:
                    comm.barrier()  # spmd: ignore
            """
        )

    def test_prefixless_shorthand_suppresses(self):
        # `spmd:` already names the namespace, so the SPMD- prefix is
        # optional inside the brackets.
        assert not findings_for(
            """
            def f(comm, x):
                if comm.rank == 0:
                    comm.barrier()  # spmd: ignore[DIV-COLLECTIVE]
            """
        )

    def test_prefixless_wrong_rule_does_not_suppress(self):
        hits = findings_for(
            """
            def f(comm, x):
                if comm.rank == 0:
                    comm.barrier()  # spmd: ignore[WALLCLOCK]
            """
        )
        assert len(hits) == 1

    def test_shorthand_in_comma_list(self):
        assert not findings_for(
            """
            def f(comm, x):
                if comm.rank == 0:
                    comm.barrier()  # spmd: ignore[WALLCLOCK, DIV-COLLECTIVE]
            """
        )


class TestCli:
    def _run(self, *args, cwd):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.analyze", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
            env=env,
        )

    def test_exit_zero_on_clean_tree(self, tmp_path):
        (tmp_path / "ok.py").write_text("def f(comm, x):\n    return comm.allreduce(x)\n")
        proc = self._run(str(tmp_path), cwd=Path(__file__).resolve().parents[1])
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert proc.stdout == ""

    def test_exit_one_with_findings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(comm, x):\n    if comm.rank == 0:\n        comm.barrier()\n")
        proc = self._run(str(bad), cwd=Path(__file__).resolve().parents[1])
        assert proc.returncode == 1
        assert "SPMD-DIV-COLLECTIVE" in proc.stdout
        assert f"{bad}:3:" in proc.stdout

    def test_exit_two_on_syntax_error(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        proc = self._run(str(tmp_path), cwd=Path(__file__).resolve().parents[1])
        assert proc.returncode == 2
        assert "SPMD-PARSE-ERROR" in proc.stdout

    def test_list_rules(self):
        proc = self._run("--list-rules", cwd=Path(__file__).resolve().parents[1])
        assert proc.returncode == 0
        for rule in (
            "SPMD-DIV-COLLECTIVE",
            "SPMD-UNWAITED-REQUEST",
            "SPMD-BLOCKING-CYCLE",
            "SPMD-TAG-COLLISION",
            "SPMD-WALLCLOCK",
            "SPMD-BUFFER-REUSE",
            "SPMD-VIEW-SEND",
            "SPMD-SHAPE-MISMATCH",
        ):
            assert rule in proc.stdout

    def test_sarif_output(self, tmp_path):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text("def f(comm, x):\n    if comm.rank == 0:\n        comm.barrier()\n")
        out = tmp_path / "lint.sarif"
        proc = self._run(
            str(bad),
            "--format",
            "sarif",
            "--output",
            str(out),
            cwd=Path(__file__).resolve().parents[1],
        )
        assert proc.returncode == 1  # findings still drive the exit code
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analyze"
        (result,) = run["results"]
        assert result["ruleId"] == "SPMD-DIV-COLLECTIVE"
        assert result["level"] == "warning"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] == 3
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "SPMD-BUFFER-REUSE" in rule_ids

    def test_sarif_clean_tree_is_valid_empty_log(self, tmp_path):
        import json

        (tmp_path / "ok.py").write_text("def f(comm, x):\n    return comm.allreduce(x)\n")
        proc = self._run(
            str(tmp_path), "--format", "sarif", cwd=Path(__file__).resolve().parents[1]
        )
        assert proc.returncode == 0
        doc = json.loads(proc.stdout)
        assert doc["runs"][0]["results"] == []


class TestRepoIsClean:
    def test_src_and_examples_lint_clean(self):
        root = Path(__file__).resolve().parents[1]
        findings = analyze_paths([root / "src", root / "examples"])
        assert findings == [], "\n".join(f.format() for f in findings)
