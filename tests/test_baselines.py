"""Correctness and behavioural tests of the baseline sorters."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINES,
    bitonic_sort,
    hss_sort,
    hyksort,
    hyperquicksort,
    psrs_sort,
    sample_sort,
)
from repro.data import make_partition
from repro.mpi import SPMDError
from repro.seq import is_globally_sorted, is_permutation


def _run_baseline(run, algo, parts, **kwargs):
    p = len(parts)

    def prog(comm):
        return algo(comm, parts[comm.rank], **kwargs)

    return run(p, prog)


def _check(parts, results):
    outs = [r.output for r in results]
    assert is_globally_sorted(outs)
    assert is_permutation(parts, outs)


POW2_ONLY = {"hyperquicksort", "bitonic"}


class TestAllBaselines:
    @pytest.mark.parametrize("name", sorted(BASELINES))
    @pytest.mark.parametrize("dist", ["uniform_u64", "normal_f64", "duplicates_i64"])
    def test_correct_pow2(self, run, name, dist):
        parts = [make_partition(dist, 800, rank=r, seed=21) for r in range(8)]
        _check(parts, _run_baseline(run, BASELINES[name], parts))

    @pytest.mark.parametrize(
        "name", sorted(set(BASELINES) - POW2_ONLY)
    )
    def test_correct_odd_rank_count(self, run, name):
        parts = [make_partition("uniform_u64", 700, rank=r, seed=22) for r in range(5)]
        _check(parts, _run_baseline(run, BASELINES[name], parts))

    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_single_rank(self, run, name):
        parts = [make_partition("normal_f64", 300, rank=0, seed=23)]
        _check(parts, _run_baseline(run, BASELINES[name], parts))

    @pytest.mark.parametrize("name", sorted(set(BASELINES) - POW2_ONLY))
    def test_empty_partitions(self, run, name):
        parts = [
            make_partition("uniform_u64", 0 if r % 2 else 900, rank=r, seed=24)
            for r in range(4)
        ]
        _check(parts, _run_baseline(run, BASELINES[name], parts))

    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_phases_recorded(self, run, name):
        parts = [make_partition("uniform_u64", 400, rank=r, seed=25) for r in range(4)]
        out = _run_baseline(run, BASELINES[name], parts)
        assert out[0].phases
        assert out[0].time > 0


class TestSampleSort:
    def test_balance_depends_on_oversampling(self, run):
        parts = [make_partition("uniform_u64", 4000, rank=r, seed=26) for r in range(8)]
        small = _run_baseline(run, sample_sort, parts, oversampling=4)
        big = _run_baseline(run, sample_sort, parts, oversampling=256)
        def imbalance(results):
            sizes = np.array([r.output.size for r in results])
            return float(np.abs(sizes - 4000).max())
        assert imbalance(big) <= imbalance(small)

    def test_psrs_balances_well(self, run):
        parts = [make_partition("uniform_u64", 4000, rank=r, seed=27) for r in range(8)]
        out = _run_baseline(run, psrs_sort, parts)
        sizes = np.array([r.output.size for r in out])
        assert np.abs(sizes - 4000).max() < 4000  # never catastrophically off


class TestHss:
    def test_perfect_partitioning(self, run):
        parts = [make_partition("uniform_u64", 1500, rank=r, seed=28) for r in range(6)]
        out = _run_baseline(run, hss_sort, parts)
        assert all(r.output.size == 1500 for r in out)

    def test_diagnostics(self, run):
        parts = [make_partition("uniform_u64", 1500, rank=r, seed=28) for r in range(4)]
        out = _run_baseline(run, hss_sort, parts)
        diag = out[0].info["diagnostics"]
        assert diag.rounds >= 1
        assert diag.probes_total > 0

    def test_interval_sampling_converges_faster(self, run):
        parts = [make_partition("uniform_u64", 3000, rank=r, seed=29) for r in range(6)]
        glob = _run_baseline(run, hss_sort, parts, sampling="global")
        ideal = _run_baseline(run, hss_sort, parts, sampling="interval")
        assert (
            ideal[0].info["diagnostics"].rounds
            <= glob[0].info["diagnostics"].rounds
        )

    def test_invalid_sampling(self, run):
        parts = [np.arange(10)] * 2
        with pytest.raises(SPMDError):
            _run_baseline(run, hss_sort, parts, sampling="nope")

    def test_eps_tolerance(self, run):
        parts = [make_partition("uniform_u64", 4000, rank=r, seed=30) for r in range(4)]
        out = _run_baseline(run, hss_sort, parts, eps=0.1)
        outs = [r.output for r in out]
        assert is_globally_sorted(outs) and is_permutation(parts, outs)


class TestHypercubeFamily:
    def test_hyperquicksort_requires_pow2(self, run):
        parts = [np.arange(10)] * 3
        with pytest.raises(SPMDError):
            _run_baseline(run, hyperquicksort, parts)

    def test_hyperquicksort_moves_data_log_times(self, run):
        parts = [make_partition("uniform_u64", 1000, rank=r, seed=31) for r in range(8)]
        out = _run_baseline(run, hyperquicksort, parts)
        assert out[0].info["rounds"] == 3  # log2(8)

    def test_bitonic_requires_pow2(self, run):
        parts = [np.arange(10)] * 3
        with pytest.raises(SPMDError):
            _run_baseline(run, bitonic_sort, parts)

    def test_bitonic_requires_equal_sizes(self, run):
        parts = [np.arange(10), np.arange(5)]
        with pytest.raises(SPMDError):
            _run_baseline(run, bitonic_sort, parts)

    def test_bitonic_stage_count(self, run):
        parts = [make_partition("uniform_u64", 500, rank=r, seed=32) for r in range(8)]
        out = _run_baseline(run, bitonic_sort, parts)
        assert out[0].info["stages"] == 6  # 3*(3+1)/2

    def test_bitonic_preserves_sizes(self, run):
        parts = [make_partition("uniform_u64", 512, rank=r, seed=33) for r in range(4)]
        out = _run_baseline(run, bitonic_sort, parts)
        assert all(r.output.size == 512 for r in out)

    def test_hyksort_k_values(self, run):
        parts = [make_partition("uniform_u64", 700, rank=r, seed=34) for r in range(8)]
        for k in (2, 3, 8):
            _check(parts, _run_baseline(run, hyksort, parts, k=k))

    def test_hyksort_k_validation(self, run):
        parts = [np.arange(4)] * 2
        with pytest.raises(SPMDError):
            _run_baseline(run, hyksort, parts, k=1)

    def test_hyksort_fewer_rounds_with_bigger_k(self, run):
        parts = [make_partition("uniform_u64", 600, rank=r, seed=35) for r in range(8)]
        k2 = _run_baseline(run, hyksort, parts, k=2)[0].info["rounds"]
        k8 = _run_baseline(run, hyksort, parts, k=8)[0].info["rounds"]
        assert k8 < k2
