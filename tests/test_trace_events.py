"""Event tracing: recorder semantics, zero-cost parity, export, analysis, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import SortConfig, histogram_sort
from repro.data import make_partition
from repro.machine import abstract_cluster
from repro.mpi import run_spmd
from repro.trace import (
    TraceRecorder,
    combine_phases,
    critical_path,
    idle_fraction,
    imbalance_ratio,
    phase_breakdown,
    rank_activity,
    spans_from_chrome,
    to_chrome_json,
    traffic_matrix,
    write_chrome_trace,
)
from repro.trace.report import main as report_main
from repro.trace.report import render_report

from .conftest import spmd


def _sort_prog(comm, n, seed, config):
    local = make_partition("uniform_u64", n, rank=comm.rank, seed=seed)
    res = histogram_sort(comm, local, config=config)
    return {
        "phases": res.phases,
        "output": res.output,
        "rounds": res.rounds,
        "clock": comm.clock,
    }


def _traced_sort(p, *, n=500, seed=7, config=None, **kwargs):
    config = config or SortConfig()
    return spmd(
        p, _sort_prog, n, seed, config, trace=True, return_runtime=True, **kwargs
    )


class TestParity:
    """Tracing must not perturb results or virtual time in any way."""

    @pytest.mark.parametrize("overlap", [False, True])
    def test_traced_run_bit_identical(self, overlap):
        config = SortConfig(overlap_exchange=overlap)
        base = spmd(8, _sort_prog, 500, 7, config)
        traced, rt = _traced_sort(8, config=config)
        assert rt.trace is not None and len(rt.trace) > 0
        for b, t in zip(base, traced):
            assert b["phases"] == t["phases"]  # exact, not approx
            assert b["clock"] == t["clock"]
            assert b["rounds"] == t["rounds"]
            np.testing.assert_array_equal(b["output"], t["output"])

    def test_disabled_runtime_records_nothing(self):
        results, rt = spmd(4, _sort_prog, 200, 1, SortConfig(), return_runtime=True)
        assert rt.trace is None
        # The null tracer is shared and inert.
        from repro.trace import NULL_TRACER

        with NULL_TRACER.span("anything", k=1):
            pass
        NULL_TRACER.record("x", 0.0)
        NULL_TRACER.instant("y")

    def test_sortconfig_trace_flag_enables_recorder(self):
        results, rt = spmd(
            4, _sort_prog, 200, 1, SortConfig(trace=True), return_runtime=True
        )
        assert isinstance(rt.trace, TraceRecorder)
        assert len(rt.trace) > 0


class TestRecorder:
    def test_span_ordering_and_nesting_per_rank(self):
        _, rt = _traced_sort(4)
        for rank in range(4):
            spans = rt.trace.rank_spans(rank)
            assert spans, f"rank {rank} recorded nothing"
            assert all(s.rank == rank for s in spans)
            assert all(s.t1 >= s.t0 for s in spans)
            # Ordered by start, enclosing-first at equal starts.
            starts = [s.t0 for s in spans]
            assert starts == sorted(starts)
            # The whole-sort span encloses every other span of the rank.
            tops = [s for s in spans if s.name == "histogram_sort"]
            assert len(tops) == 1
            top = tops[0]
            assert all(
                top.t0 <= s.t0 and s.t1 <= top.t1 + 1e-15 for s in spans
            )

    def test_expected_span_kinds_present(self):
        _, rt = _traced_sort(8)
        names = {(s.cat, s.name) for s in rt.trace.spans()}
        for phase in ("local_sort", "splitting", "exchange", "merge"):
            assert ("phase", phase) in names
        assert ("user", "histogram_round") in names
        assert ("user", "exchange_plan") in names
        assert ("user", "exchange_data") in names
        assert ("collective", "allreduce") in names
        assert ("collective", "alltoallv") in names
        assert ("compute", "compute") in names

    def test_collective_attrs(self):
        _, rt = _traced_sort(4)
        colls = [s for s in rt.trace.spans() if s.cat == "collective"]
        assert colls
        for s in colls:
            assert s.attrs["nranks"] >= 1
            assert s.attrs["bytes"] >= 0
            assert s.attrs["idle"] >= 0.0
            assert s.attrs["idle"] <= s.duration + 1e-15
            assert "comm" in s.attrs and "seq" in s.attrs
            assert s.attrs["level"] in ("self", "numa", "socket", "node", "network")
        # Every invocation is matched across exactly nranks ranks.
        by_key: dict[tuple, list] = {}
        for s in colls:
            by_key.setdefault((s.attrs["comm"], s.attrs["seq"], s.name), []).append(s)
        for key, group in by_key.items():
            assert len(group) == group[0].attrs["nranks"], key

    def test_idle_accounting_around_imbalanced_barrier(self):
        def prog(comm):
            comm.compute(1.0 * comm.rank)  # rank r works r seconds
            comm.barrier()
            return comm.clock

        _, rt = spmd(4, prog, trace=True, return_runtime=True)
        barriers = {
            s.rank: s for s in rt.trace.spans() if s.name == "barrier"
        }
        assert set(barriers) == {0, 1, 2, 3}
        # Rank 0 waits ~3s for rank 3; rank 3 (the last arriver) waits ~0.
        assert barriers[0].idle == pytest.approx(3.0, abs=1e-6)
        assert barriers[1].idle == pytest.approx(2.0, abs=1e-6)
        assert barriers[3].idle == pytest.approx(0.0, abs=1e-6)
        for s in barriers.values():
            assert s.attrs["last_arrival"] == pytest.approx(3.0, abs=1e-6)

    def test_p2p_spans_and_recv_idle(self):
        def prog(comm):
            if comm.rank == 0:
                comm.compute(1.0)
                comm.send(np.arange(10), 1, tag=5)  # spmd: ignore[TAG-COLLISION]
            elif comm.rank == 1:
                obj = comm.recv(0, tag=5)  # blocks ~1s for the sender  # spmd: ignore[TAG-COLLISION]
                assert obj.size == 10
            comm.barrier()
            return comm.clock

        _, rt = spmd(2, prog, trace=True, return_runtime=True)
        spans = rt.trace.spans()
        send = next(s for s in spans if s.name == "send")
        recv = next(s for s in spans if s.name == "recv")
        assert send.rank == 0 and send.attrs["peer"] == 1
        assert recv.rank == 1 and recv.attrs["src"] == 0
        assert send.nbytes == recv.nbytes == 80
        assert recv.idle == pytest.approx(send.attrs.get("departure", send.t1) - recv.t0)
        assert recv.idle >= 1.0 - 1e-9

    def test_wait_span_from_irecv(self):
        def prog(comm):
            if comm.rank == 0:
                comm.compute(0.5)
                comm.send(b"x", 1)
            elif comm.rank == 1:
                req = comm.irecv(0)
                req.wait()
            comm.barrier()

        _, rt = spmd(2, prog, trace=True, return_runtime=True)
        names = {s.name for s in rt.trace.spans() if s.rank == 1}
        assert "wait" in names

    def test_compute_span_coalescing(self):
        def prog(comm):
            for _ in range(5):
                comm.compute(0.1)  # back-to-back: one span
            comm.barrier()
            comm.compute(0.1)  # separated by the barrier: a second span

        _, rt = spmd(2, prog, trace=True, return_runtime=True)
        computes = [
            s for s in rt.trace.rank_spans(0) if s.cat == "compute"
        ]
        assert len(computes) == 2
        assert computes[0].duration == pytest.approx(0.5)

    def test_reset_clears_trace(self):
        _, rt = _traced_sort(4)
        assert len(rt.trace) > 0
        rt.reset()
        assert rt.trace is not None and len(rt.trace) == 0


class TestExport:
    def test_chrome_json_schema(self, tmp_path):
        _, rt = _traced_sort(8)
        path = write_chrome_trace(tmp_path / "t.json", rt.trace)
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        assert data["otherData"]["ranks"] == 8
        xs = [e for e in data["traceEvents"] if e["ph"] == "X"]
        ms = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert len(xs) == len(rt.trace)
        # One named track per rank.
        tracks = {
            e["tid"] for e in ms if e["name"] == "thread_name"
        }
        assert tracks == set(range(8))
        for e in xs:
            assert e["dur"] >= 0
            assert e["ts"] >= 0
            json.dumps(e["args"])  # attrs must be JSON-clean

    def test_roundtrip_preserves_spans(self):
        _, rt = _traced_sort(4)
        original = rt.trace.spans()
        back = spans_from_chrome(to_chrome_json(rt.trace))
        assert len(back) == len(original)
        orig_sorted = sorted(original, key=lambda s: (s.rank, s.t0, -s.t1))
        for a, b in zip(orig_sorted, back):
            assert (a.rank, a.name, a.cat) == (b.rank, b.name, b.cat)
            assert a.t0 == pytest.approx(b.t0, abs=1e-15)
            assert a.duration == pytest.approx(b.duration, abs=1e-15)


class TestAnalysis:
    def test_rank_activity_sums_to_makespan(self):
        _, rt = _traced_sort(8)
        spans = rt.trace.spans()
        total = rt.trace.makespan
        for act in rank_activity(spans):
            assert act.busy + act.idle == pytest.approx(total)
            assert 0.0 <= act.idle_fraction <= 1.0
        assert 0.0 <= idle_fraction(spans) <= 1.0
        assert imbalance_ratio(spans) >= 1.0 - 1e-12

    def test_idle_fraction_detects_straggler(self):
        def prog(comm):
            comm.compute(3.0 if comm.rank == 3 else 0.1)
            comm.barrier()

        _, rt = spmd(4, prog, trace=True, return_runtime=True)
        acts = {a.rank: a for a in rank_activity(rt.trace.spans())}
        assert acts[0].idle_fraction > 0.9
        assert acts[3].idle_fraction < 0.1
        assert imbalance_ratio(rt.trace.spans()) > 2.0

    def test_phase_breakdown_matches_timer(self):
        results, rt = _traced_sort(8)
        from_trace = phase_breakdown(rt.trace.spans(), how="max")
        from_timer = combine_phases([r["phases"] for r in results], how="max")
        for name, val in from_timer.items():
            if val > 0:
                assert from_trace[name] == pytest.approx(val)

    def test_traffic_matrix_attributes_exchange(self):
        _, rt = _traced_sort(8)
        tm = traffic_matrix(rt.trace.spans())
        assert tm[("exchange", "alltoallv")] > 0
        assert tm[("splitting", "allreduce")] > 0

    def test_critical_path_covers_makespan(self):
        _, rt = _traced_sort(8)
        spans = rt.trace.spans()
        path = critical_path(spans)
        assert path
        length = sum(seg.duration for seg in path)
        # Contiguous backward chain of busy work: length ~= makespan.
        assert length == pytest.approx(rt.trace.makespan, rel=1e-6)
        for a, b in zip(path, path[1:]):
            assert b.t0 >= a.t1 - 1e-12  # time-ordered, no overlap

    def test_critical_path_follows_straggler(self):
        def prog(comm):
            comm.compute(2.0 if comm.rank == 2 else 0.1)
            comm.barrier()
            comm.compute(0.1)

        _, rt = spmd(4, prog, trace=True, return_runtime=True)
        path = critical_path(rt.trace.spans())
        # The pre-barrier stretch of the path must run on the straggler.
        pre = [seg for seg in path if seg.cat == "compute" and seg.t0 < 1.9]
        assert pre and all(seg.rank == 2 for seg in pre)


class TestReportCLI:
    def test_report_on_histogram_sort(self, tmp_path, capsys):
        _, rt = _traced_sort(8)
        path = write_chrome_trace(tmp_path / "t.json", rt.trace)
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "idle fraction" in out
        assert "imbalance ratio" in out
        assert "critical path" in out
        assert "splitting" in out
        assert "alltoallv" in out

    def test_report_on_overlap_exchange(self, tmp_path, capsys):
        _, rt = _traced_sort(8, config=SortConfig(overlap_exchange=True))
        names = {s.name for s in rt.trace.spans()}
        assert "overlap_round" in names
        path = write_chrome_trace(tmp_path / "t.json", rt.trace)
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "sendrecv" in out or "send" in out or "recv" in out

    def test_render_report_from_recorder(self):
        _, rt = _traced_sort(4)
        text = render_report(rt.trace.spans())
        assert "== trace report ==" in text
        assert "ranks: 4" in text

    def test_report_rejects_empty(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert report_main([str(path)]) == 1


class TestSatellites:
    def test_stats_collective_participants(self):
        def prog(comm):
            comm.allreduce(comm.rank)
            sub = comm.split(comm.rank % 2, comm.rank)
            sub.allreduce(1)

        _, rt = spmd(4, prog, return_runtime=True)
        summary = rt.stats.summary()
        calls, nbytes, ranks = summary["collectives"]["allreduce"]
        # One 4-rank allreduce + two 2-rank ones (one per subgroup).
        assert calls == 3
        assert ranks == 4 + 2 + 2

    def test_traffic_snapshot_exposes_calls_and_ranks(self):
        from repro.trace import TrafficSnapshot

        def prog(comm):
            comm.allreduce(np.arange(4))

        _, rt = spmd(4, prog, return_runtime=True)
        snap = TrafficSnapshot.capture(rt)
        assert snap.collective_calls["allreduce"] == 1
        assert snap.collective_ranks["allreduce"] == 4
        diff = snap.diff(snap)
        assert diff.collective_calls["allreduce"] == 0
        assert diff.collective_ranks["allreduce"] == 0

    def test_combine_phases_sum(self):
        per_rank = [{"a": 1.0, "b": 2.0}, {"a": 3.0}]
        assert combine_phases(per_rank, how="sum") == {"a": 4.0, "b": 2.0}
        assert combine_phases(per_rank, how="max") == {"a": 3.0, "b": 2.0}
        assert combine_phases(per_rank, how="mean") == {"a": 2.0, "b": 1.0}
        with pytest.raises(ValueError):
            combine_phases(per_rank, how="median")

    def test_harness_trace_path(self, tmp_path):
        from repro.bench.harness import run_sort_trial

        path = tmp_path / "trial.json"
        trial = run_sort_trial(4, 200, trace_path=path)
        assert path.exists()
        data = json.loads(path.read_text())
        assert data["otherData"]["ranks"] == 4
        assert trial.total > 0

    def test_baseline_traces(self):
        from repro.baselines import sample_sort

        def prog(comm):
            local = make_partition("uniform_u64", 300, rank=comm.rank, seed=2)
            return sample_sort(comm, local).output

        _, rt = spmd(4, prog, trace=True, return_runtime=True)
        names = {s.name for s in rt.trace.spans()}
        assert "exchange_data" in names
        assert "alltoallv" in names


class TestAcceptance16:
    """The ISSUE's acceptance run: 16 ranks on 2 nodes, full trace."""

    def test_16_rank_trace(self, tmp_path):
        config = SortConfig()
        results, rt = spmd(
            16,
            _sort_prog,
            1000,
            11,
            config,
            machine=abstract_cluster(2, cores_per_node=8),
            trace=True,
            return_runtime=True,
        )
        rec = rt.trace
        # Spans on every rank, phase spans for all four supersteps, and
        # per-round histogram collectives inside the splitting phase.
        for rank in range(16):
            spans = rec.rank_spans(rank)
            assert spans
            phases = {s.name for s in spans if s.cat == "phase"}
            assert {"local_sort", "splitting", "exchange", "merge"} <= phases
            rounds = [s for s in spans if s.name == "histogram_round"]
            assert rounds
            split_phase = next(s for s in spans if s.name == "splitting")
            for r in rounds:
                assert split_phase.t0 - 1e-12 <= r.t0
                assert r.t1 <= split_phase.t1 + 1e-12
                inner = [
                    s
                    for s in spans
                    if s.cat == "collective" and r.t0 - 1e-15 <= s.t0 and s.t1 <= r.t1 + 1e-15
                ]
                assert inner, "histogram round without collectives"

        path = write_chrome_trace(tmp_path / "accept.json", rec)
        data = json.loads(path.read_text())
        tracks = {
            e["tid"]
            for e in data["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert tracks == set(range(16))
        nodes = {
            e["pid"]
            for e in data["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert len(nodes) == 2  # two nodes -> two Perfetto process groups
        # The modelled makespan is untouched by tracing.
        base = spmd(
            16,
            _sort_prog,
            1000,
            11,
            config,
            machine=abstract_cluster(2, cores_per_node=8),
        )
        for b, t in zip(base, results):
            assert b["clock"] == t["clock"]
