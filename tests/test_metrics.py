"""Metrics registry: types, labels, exposition, collectors, non-perturbation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.harness import run_sort_trial
from repro.core import histogram_sort
from repro.data import make_partition
from repro.machine import abstract_cluster
from repro.metrics import (
    BYTES_BUCKETS,
    TIME_BUCKETS,
    MetricsRegistry,
    collect_phases,
    collect_runtime,
    collect_trace,
    exponential_buckets,
    to_json,
    to_prometheus,
)
from repro.mpi import StatsSnapshot, run_spmd
from repro.trace import TrafficSnapshot

from .conftest import spmd


def _sort_prog(comm, n, seed):
    local = make_partition("uniform_u64", n, rank=comm.rank, seed=seed)
    res = histogram_sort(comm, local)
    return {"output": res.output, "phases": res.phases, "clock": comm.clock}


class TestRegistry:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help").default()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("g", "help").default()
        g.set(4.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 3.0

    def test_histogram_buckets_and_overflow(self):
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", "help", buckets=(1.0, 10.0, 100.0)).default()
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        cum = dict(h.cumulative())
        assert cum[1.0] == 1 and cum[10.0] == 2 and cum[100.0] == 3
        assert cum[float("inf")] == 4
        with pytest.raises(ValueError):
            h.observe(float("nan"))

    def test_exponential_buckets(self):
        buckets = exponential_buckets(1e-6, 4.0, 5)
        assert buckets == (1e-6, 4e-6, 16e-6, 64e-6, 256e-6)
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 4.0, 5)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 5)
        assert len(TIME_BUCKETS) == 17 and len(BYTES_BUCKETS) == 14

    def test_labels_create_children_and_validate(self):
        reg = MetricsRegistry()
        fam = reg.counter("traffic_total", "help", labelnames=("algo", "phase"))
        fam.labels(algo="dash", phase="exchange").inc(5)
        fam.labels(algo="hss", phase="exchange").inc(7)
        assert fam.total() == 12
        with pytest.raises(ValueError):
            fam.labels(algo="dash")  # missing label
        with pytest.raises(ValueError):
            fam.labels(algo="dash", phase="x", extra="y")
        with pytest.raises(ValueError):
            fam.default()  # labelled family has no default child

    def test_redeclaration_idempotent_but_mismatch_raises(self):
        reg = MetricsRegistry()
        a = reg.counter("n_total", "help", labelnames=("algo",))
        b = reg.counter("n_total", "help", labelnames=("algo",))
        assert a is b
        with pytest.raises(ValueError):
            reg.gauge("n_total", "help", labelnames=("algo",))
        with pytest.raises(ValueError):
            reg.counter("n_total", "other help", labelnames=("algo",))
        with pytest.raises(ValueError):
            reg.counter("n_total", "help", labelnames=("machine",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name", "help")
        with pytest.raises(ValueError):
            reg.counter("ok_total", "help", labelnames=("bad-label",))

    def test_value_lookup(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "h", ("k",)).labels(k="x").inc(3)
        reg.counter("a_total", "h", ("k",)).labels(k="y").inc(4)
        assert reg.value("a_total") == 7
        assert reg.value("a_total", {"k": "x"}) == 3
        with pytest.raises(KeyError):
            reg.value("missing_total")


class TestExposition:
    def _loaded(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a \"quoted\"\nhelp", ("algo",)).labels(algo="dash").inc(2)
        reg.gauge("g_seconds", "gauge", ()).default().set(1.5)
        reg.histogram("h_seconds", "hist", ("phase",), buckets=(0.1, 1.0)).labels(
            phase="exchange"
        ).observe(0.5)
        return reg

    def test_prometheus_text_shape(self):
        text = self._loaded().to_prometheus()
        assert '# TYPE c_total counter' in text
        assert 'c_total{algo="dash"} 2' in text
        assert 'g_seconds 1.5' in text
        assert 'h_seconds_bucket{phase="exchange",le="+Inf"} 1' in text
        assert 'h_seconds_sum{phase="exchange"} 0.5' in text
        assert 'h_seconds_count{phase="exchange"} 1' in text
        assert '\\n' in text  # escaped newline in help
        # families render in sorted name order
        assert text.index("c_total") < text.index("g_seconds") < text.index("h_seconds")

    def test_prometheus_deterministic(self):
        assert self._loaded().to_prometheus() == self._loaded().to_prometheus()

    def test_json_serializable_roundtrip(self):
        doc = to_json(self._loaded())
        parsed = json.loads(json.dumps(doc))
        names = [f["name"] for f in parsed["metrics"]]
        assert names == sorted(names)
        hist = next(f for f in parsed["metrics"] if f["name"] == "h_seconds")
        assert hist["samples"][0]["buckets"]["+Inf"] == 1

    def test_empty_registry_renders_empty(self):
        reg = MetricsRegistry()
        assert to_prometheus(reg) == ""
        assert to_json(reg) == {"metrics": []}


class TestCollectors:
    def _run(self, p=8, n=512):
        return spmd(p, _sort_prog, n, 3, trace=True, return_runtime=True)

    def test_collect_runtime_matches_stats(self):
        _, rt = self._run()
        reg = MetricsRegistry()
        collect_runtime(reg, rt, labels={"algo": "dash", "machine": "abstract"})
        snap = rt.stats.snapshot()
        assert reg.value("repro_bytes_on_wire_total") == snap.wire_bytes
        assert reg.value("repro_p2p_bytes_total") == snap.total_bytes_sent
        assert (
            reg.value("repro_messages_total")
            == snap.total_msgs_sent + snap.total_collective_calls
        )
        assert reg.value("repro_makespan_seconds", {"algo": "dash", "machine": "abstract"}) == rt.elapsed()
        calls = reg.get("repro_collective_calls_total")
        ops = {lab["op"] for lab, _ in calls.samples()}
        assert "allreduce" in ops and "alltoallv" in ops
        hist = reg.get("repro_rank_clock_seconds").labels(algo="dash", machine="abstract")
        assert hist.count == rt.size

    def test_collect_phases_histogram_and_total(self):
        results, _ = self._run(p=4)
        reg = MetricsRegistry()
        phases = results[0]["phases"]
        collect_phases(reg, phases, labels={"algo": "dash"})
        for name, seconds in phases.items():
            child = reg.get("repro_phase_seconds").labels(algo="dash", phase=name)
            assert child.count == 1
            assert child.sum == seconds
        assert reg.value("repro_phase_seconds_total") == pytest.approx(
            sum(max(v, 0.0) for v in phases.values())
        )

    def test_collect_trace_spans(self):
        _, rt = self._run(p=4)
        reg = MetricsRegistry()
        collect_trace(reg, rt.trace, labels={"algo": "dash"})
        dur = reg.get("repro_span_seconds")
        cats = {lab["cat"] for lab, _ in dur.samples()}
        assert "phase" in cats and "collective" in cats
        total_spans = sum(child.count for _, child in dur.samples())
        assert total_spans == len(rt.trace)

    def test_one_registry_accumulates_many_runs(self):
        reg = MetricsRegistry()
        for seed in (1, 2):
            _, rt = spmd(4, _sort_prog, 256, seed, return_runtime=True)
            collect_runtime(reg, rt, labels={"algo": "dash"})
        assert reg.value("repro_runs_total") == 2


class TestStatsSnapshot:
    def test_snapshot_is_consistent_copy(self):
        _, rt = spmd(4, _sort_prog, 256, 1, return_runtime=True)
        snap = rt.stats.snapshot()
        assert isinstance(snap, StatsSnapshot)
        assert snap.total_bytes_sent == int(rt.stats.bytes_sent.sum())
        # mutating the live stats does not leak into the snapshot
        before = snap.total_msgs_sent
        rt.stats.record_send(0, 1000)
        assert snap.total_msgs_sent == before
        assert rt.stats.snapshot().total_msgs_sent == before + 1

    def test_wire_bytes_combines_p2p_and_collectives(self):
        _, rt = spmd(4, _sort_prog, 256, 1, return_runtime=True)
        snap = rt.stats.snapshot()
        assert snap.wire_bytes == snap.total_bytes_sent + snap.total_collective_bytes
        assert snap.total_collective_bytes > 0

    def test_traffic_snapshot_capture_uses_public_api(self):
        _, rt = spmd(4, _sort_prog, 256, 1, return_runtime=True)
        traffic = TrafficSnapshot.capture(rt)
        snap = rt.stats.snapshot()
        assert traffic.bytes_sent == snap.total_bytes_sent
        assert traffic.msgs_sent == snap.total_msgs_sent
        assert traffic.collective_calls == {k: v[0] for k, v in snap.collectives.items()}
        assert traffic.collective_bytes == {k: v[1] for k, v in snap.collectives.items()}


class TestParity:
    """Metrics collection must not perturb results or virtual time."""

    def test_16_rank_bit_parity(self):
        machine = abstract_cluster(2, cores_per_node=8)
        base = run_sort_trial(16, 600, algo="dash", seed=5, machine=machine)
        reg = MetricsRegistry()
        observed = run_sort_trial(
            16, 600, algo="dash", seed=5, machine=machine,
            metrics=reg, metrics_labels={"algo": "dash", "machine": "abstract2"},
        )
        assert observed.total == base.total  # exact, not approx
        assert observed.phases == base.phases
        assert observed.rounds == base.rounds
        assert observed.exchanged_bytes == base.exchanged_bytes
        assert observed.extra["bytes_sent"] == base.extra["bytes_sent"]
        # and the registry did observe the run
        assert reg.value("repro_runs_total") == 1
        assert reg.value("repro_makespan_seconds", {"algo": "dash", "machine": "abstract2"}) == base.total

    def test_collection_leaves_runtime_untouched(self):
        results, rt = spmd(16, _sort_prog, 400, 9, return_runtime=True)
        clocks_before = rt.clocks.copy()
        snap_before = rt.stats.snapshot()
        reg = MetricsRegistry()
        collect_runtime(reg, rt, labels={"algo": "dash"})
        np.testing.assert_array_equal(rt.clocks, clocks_before)
        after = rt.stats.snapshot()
        np.testing.assert_array_equal(after.bytes_sent, snap_before.bytes_sent)
        np.testing.assert_array_equal(after.msgs_sent, snap_before.msgs_sent)
        assert after.collectives == snap_before.collectives

    def test_program_outputs_identical_with_observation(self):
        base, _ = spmd(16, _sort_prog, 400, 11, return_runtime=True)
        observed, rt = spmd(16, _sort_prog, 400, 11, return_runtime=True)
        reg = MetricsRegistry()
        collect_runtime(reg, rt, labels={})
        for b, o in zip(base, observed):
            np.testing.assert_array_equal(b["output"], o["output"])
            assert b["clock"] == o["clock"]
            assert b["phases"] == o["phases"]
