"""Integration tests of the full four-superstep histogram sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core import SortConfig, SplitterConfig, histogram_sort
from repro.data import make_partition
from repro.seq import balance_violation, check_sorted_output, is_globally_sorted, is_permutation


def _sort_all(run, parts, config=None, caps=None):
    p = len(parts)

    def prog(comm):
        return histogram_sort(comm, parts[comm.rank], config=config, capacities=caps)

    return run(p, prog)


DISTS = [
    "uniform_u64",
    "normal_f64",
    "normal_f32",
    "zipf_u64",
    "exponential_f64",
    "nearly_sorted_i64",
    "duplicates_i64",
    "all_equal_i64",
]


class TestSortAcrossDistributions:
    @pytest.mark.parametrize("dist", DISTS)
    @pytest.mark.parametrize("p", [1, 3, 8])
    def test_output_contract(self, run, dist, p):
        parts = [make_partition(dist, 1200, rank=r, seed=7) for r in range(p)]
        out = _sort_all(run, parts)
        check_sorted_output(parts, [r.output for r in out])

    @pytest.mark.parametrize("dist", ["uniform_u64", "duplicates_i64"])
    def test_ragged_sizes(self, run, rng, dist):
        sizes = [0, 1, 777, 2000, 13]
        parts = [make_partition(dist, n, rank=r, seed=3) for r, n in enumerate(sizes)]
        out = _sort_all(run, parts)
        check_sorted_output(parts, [r.output for r in out])

    def test_dtype_preserved(self, run):
        parts = [make_partition("normal_f32", 500, rank=r) for r in range(3)]
        out = _sort_all(run, parts)
        assert all(r.output.dtype == np.float32 for r in out)

    def test_single_element_world(self, run):
        parts = [np.array([5], dtype=np.int64), np.zeros(0, dtype=np.int64)]
        out = _sort_all(run, parts)
        assert out[0].output.tolist() == [5]
        assert out[1].output.size == 0


class TestSortConfigurations:
    @pytest.mark.parametrize("strategy", ["sort", "binary_tree", "tournament", "adaptive"])
    def test_merge_strategies(self, run, strategy):
        parts = [make_partition("uniform_u64", 900, rank=r, seed=11) for r in range(4)]
        out = _sort_all(run, parts, config=SortConfig(merge_strategy=strategy))
        check_sorted_output(parts, [r.output for r in out])

    def test_uniquify_path(self, run):
        parts = [make_partition("duplicates_i64", 800, rank=r, seed=5) for r in range(4)]
        parts = [p.astype(np.uint64) for p in parts]
        out = _sort_all(run, parts, config=SortConfig(uniquify=True))
        check_sorted_output(parts, [r.output for r in out])
        assert all(r.output.dtype == np.uint64 for r in out)

    def test_eps_balance_and_speed(self, run):
        parts = [make_partition("uniform_u64", 4000, rank=r, seed=2) for r in range(6)]
        exact = _sort_all(run, parts, config=SortConfig(eps=0.0))
        loose = _sort_all(run, parts, config=SortConfig(eps=0.05))
        assert loose[0].rounds < exact[0].rounds
        outs = [r.output for r in loose]
        assert is_globally_sorted(outs) and is_permutation(parts, outs)
        assert balance_violation(
            [o.size for o in outs], [p.size for p in parts], 0.05
        ) == 0

    def test_capacities_rebalance(self, run, rng):
        parts = [
            rng.integers(0, 10**6, n).astype(np.int64) for n in (4000, 0, 0, 0)
        ]
        caps = [1000, 1000, 1000, 1000]
        out = _sort_all(run, parts, caps=caps)
        outs = [r.output for r in out]
        assert [o.size for o in outs] == caps
        assert is_globally_sorted(outs) and is_permutation(parts, outs)

    def test_sampled_guess_config(self, run):
        cfg = SortConfig(splitter=SplitterConfig(initial_guess="sample"))
        parts = [make_partition("normal_f64", 1500, rank=r, seed=9) for r in range(5)]
        out = _sort_all(run, parts, config=cfg)
        check_sorted_output(parts, [r.output for r in out])


class TestSortDiagnostics:
    def test_phase_times_cover_total(self, run):
        parts = [make_partition("uniform_u64", 2000, rank=r, seed=4) for r in range(4)]
        out = _sort_all(run, parts)
        for r in out:
            assert set(r.phases) == {"local_sort", "splitting", "exchange", "merge", "other"}
            assert all(v >= 0 for v in r.phases.values())
            assert r.time == pytest.approx(sum(r.phases.values()))
            assert r.phases["local_sort"] > 0

    def test_rounds_reported(self, run):
        parts = [make_partition("uniform_u64", 2000, rank=r, seed=4) for r in range(4)]
        out = _sort_all(run, parts)
        assert out[0].rounds > 0
        assert out[0].rounds == out[0].splitters.rounds

    def test_exchanged_bytes_positive(self, run):
        parts = [make_partition("uniform_u64", 2000, rank=r, seed=4) for r in range(4)]
        out = _sort_all(run, parts)
        assert all(r.exchanged_bytes == r.output.nbytes for r in out)

    def test_deterministic_given_seed(self, run):
        parts = [make_partition("uniform_u64", 500, rank=r, seed=1) for r in range(3)]
        a = _sort_all(run, parts)
        b = _sort_all(run, parts)
        for x, y in zip(a, b):
            assert np.array_equal(x.output, y.output)
            assert x.phases == y.phases


class TestPublicApi:
    def test_sort_returns_partition(self, run):
        parts = [make_partition("uniform_u64", 700, rank=r, seed=6) for r in range(4)]

        def prog(comm):
            return repro.sort(comm, parts[comm.rank])

        outs = run(4, prog)
        check_sorted_output(parts, outs)

    def test_sort_eps_kwarg(self, run):
        parts = [make_partition("uniform_u64", 3000, rank=r, seed=6) for r in range(4)]

        def prog(comm):
            return repro.sort(comm, parts[comm.rank], eps=0.05)

        outs = run(4, prog)
        assert is_globally_sorted(outs) and is_permutation(parts, outs)

    def test_sorted_result_diagnostics(self, run):
        parts = [make_partition("uniform_u64", 700, rank=r, seed=6) for r in range(2)]

        def prog(comm):
            return repro.sorted_result(comm, parts[comm.rank])

        out = run(2, prog)
        assert out[0].rounds >= 1

    def test_nth_element(self, run):
        parts = [make_partition("normal_f64", 800, rank=r, seed=8) for r in range(4)]
        ref = np.sort(np.concatenate(parts))

        def prog(comm):
            return repro.nth_element(comm, parts[comm.rank], 1600)

        assert run(4, prog)[0] == ref[1600]

    def test_lazy_module_attrs(self):
        assert repro.SortConfig is SortConfig
        with pytest.raises(AttributeError):
            repro.nonexistent_thing


class TestSortProperty:
    @given(
        seed=st.integers(0, 10**6),
        p=st.integers(1, 6),
        n=st.integers(0, 400),
        dist=st.sampled_from(["uniform_u64", "duplicates_i64", "normal_f64"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_contract_random_configs(self, seed, p, n, dist):
        from tests.conftest import spmd

        parts = [make_partition(dist, n, rank=r, seed=seed) for r in range(p)]

        def prog(comm):
            return histogram_sort(comm, parts[comm.rank])

        out = spmd(p, prog)
        check_sorted_output(parts, [r.output for r in out])
