"""Unit tests for the virtual-time cost model."""

import numpy as np
import pytest

from repro.machine import (
    CostModel,
    Level,
    ZeroCostModel,
    make_placement,
    supermuc_phase2,
    abstract_cluster,
)


@pytest.fixture
def cm():
    machine = supermuc_phase2(nodes=4)
    return CostModel(make_placement(machine, 112, ranks_per_node=28))


@pytest.fixture
def cm_one_node():
    machine = supermuc_phase2(nodes=1)
    return CostModel(make_placement(machine, 28, ranks_per_node=28))


class TestPtp:
    def test_closer_is_cheaper(self, cm):
        big = 1 << 20
        intra_numa = cm.ptp(0, 1, big)
        intra_node = cm.ptp(0, 20, big)
        inter_node = cm.ptp(0, 28, big)
        assert intra_numa < intra_node < inter_node

    def test_monotone_in_size(self, cm):
        assert cm.ptp(0, 28, 1 << 10) < cm.ptp(0, 28, 1 << 20)

    def test_self_send_is_cheap(self, cm):
        assert cm.ptp(0, 0, 1 << 10) < cm.ptp(0, 1, 1 << 10)


class TestCollectives:
    def test_allreduce_grows_with_group(self, cm):
        small = cm.allreduce(64, list(range(2)))
        large = cm.allreduce(64, list(range(112)))
        assert large > small

    def test_allreduce_intranode_cheaper(self, cm):
        intra = cm.allreduce(1 << 12, list(range(28)))
        inter = cm.allreduce(1 << 12, list(range(112)))
        assert intra < inter

    def test_allgather_bandwidth_term(self, cm):
        p = 28
        small = cm.allgather(8, list(range(p)))
        large = cm.allgather(1 << 16, list(range(p)))
        assert large > small * 10

    def test_barrier_positive(self, cm):
        assert cm.barrier(list(range(112))) > 0

    def test_single_rank_group(self, cm):
        # log2(1) = 0 rounds: only software overhead remains
        assert cm.allreduce(64, [0]) == pytest.approx(cm.software_overhead)

    def test_nic_sharing_multiplier(self):
        machine = supermuc_phase2(nodes=4)
        pl = make_placement(machine, 112, ranks_per_node=28)
        shared = CostModel(pl, nic_sharing=True)
        unshared = CostModel(pl, nic_sharing=False)
        ranks = list(range(112))
        assert shared.allreduce(1 << 16, ranks) > unshared.allreduce(1 << 16, ranks)

    def test_comm_split_linear_in_size(self, cm):
        t1 = cm.comm_split(list(range(28)))
        t2 = cm.comm_split(list(range(112)))
        assert t2 > t1


class TestAlltoallv:
    def _uniform_vols(self, p, per_pair):
        return np.full((p, p), per_pair, dtype=np.float64)

    def test_per_rank_shape(self, cm):
        vols = self._uniform_vols(112, 1024.0)
        out = cm.alltoallv_per_rank(vols, list(range(112)))
        assert out.shape == (112,)
        assert np.all(out > 0)

    def test_completion_is_max(self, cm):
        vols = self._uniform_vols(8, 1024.0)
        vols[3, :] *= 100  # rank 3 sends much more
        per = cm.alltoallv_per_rank(vols, list(range(8)))
        assert cm.alltoallv(vols, list(range(8))) == pytest.approx(per.max())
        assert per[3] == per.max()

    def test_intra_node_cheaper_than_cross(self):
        machine = supermuc_phase2(nodes=2)
        pl = make_placement(machine, 56, ranks_per_node=28)
        cm = CostModel(pl)
        vols = np.zeros((56, 56))
        vols[0, 1] = 1 << 24
        intra = cm.alltoallv(vols, list(range(56)))
        vols2 = np.zeros((56, 56))
        vols2[0, 28] = 1 << 24
        inter = cm.alltoallv(vols2, list(range(56)))
        assert intra < inter

    def test_shm_toggle_changes_intranode_price(self, cm_one_node):
        machine = supermuc_phase2(nodes=1)
        pl = make_placement(machine, 28, ranks_per_node=28)
        no_shm = CostModel(pl, use_shm=False)
        vols = np.full((28, 28), float(1 << 16))
        t_shm = cm_one_node.alltoallv(vols, list(range(28)))
        t_noshm = no_shm.alltoallv(vols, list(range(28)))
        assert t_noshm > t_shm

    def test_bad_shape_rejected(self, cm):
        with pytest.raises(ValueError):
            cm.alltoallv_per_rank(np.zeros((3, 4)), list(range(3)))

    def test_single_rank(self, cm_one_node):
        machine = supermuc_phase2(nodes=1)
        pl = make_placement(machine, 1, ranks_per_node=1)
        solo = CostModel(pl)
        out = solo.alltoallv_per_rank(np.array([[1024.0]]), [0])
        assert out.shape == (1,)

    def test_bisection_floor_engages(self):
        machine = supermuc_phase2(nodes=128)
        p = 256
        pl = make_placement(machine, p, ranks_per_node=2)
        cm = CostModel(pl)
        vols = np.full((p, p), 1e9 / p)  # ~1 GB per rank
        per = cm.alltoallv_per_rank(vols, list(range(p)))
        cross = vols.sum() * (1 - 1 / 128)
        floor = cross / machine.bisection_bandwidth
        assert np.all(per >= floor * 0.9)


class TestZeroCostModel:
    def test_everything_free(self):
        machine = abstract_cluster(1)
        pl = make_placement(machine, 4, ranks_per_node=4)
        z = ZeroCostModel(pl)
        assert z.ptp(0, 1, 1 << 30) == 0.0
        assert z.allreduce(1 << 30, [0, 1, 2, 3]) == 0.0
        assert z.alltoallv_per_rank(np.ones((4, 4)), [0, 1, 2, 3]).sum() == 0.0
