"""Phase timers and traffic snapshots."""

import pytest

from repro.mpi import Runtime, run_spmd
from repro.trace import PhaseTimer, TrafficSnapshot, combine_phases, phase_fractions


class TestPhaseTimer:
    def test_marks_split_timeline(self, run):
        def prog(comm):
            timer = PhaseTimer(comm)
            comm.compute(1.0)
            timer.mark("a")
            comm.compute(2.0)
            timer.mark("b")
            return timer.phases, timer.total

        phases, total = run(1, prog)[0]
        assert phases["a"] == pytest.approx(1.0)
        assert phases["b"] == pytest.approx(2.0)
        assert total == pytest.approx(3.0)

    def test_repeated_mark_accumulates(self, run):
        def prog(comm):
            timer = PhaseTimer(comm)
            comm.compute(1.0)
            timer.mark("x")
            comm.compute(1.0)
            timer.mark("x")
            return timer.phases["x"]

        assert run(1, prog)[0] == pytest.approx(2.0)

    def test_mark_returns_delta(self, run):
        def prog(comm):
            timer = PhaseTimer(comm)
            comm.compute(0.5)
            return timer.mark("p")

        assert run(1, prog)[0] == pytest.approx(0.5)


class TestCombine:
    def test_max_and_mean(self):
        per_rank = [{"a": 1.0, "b": 0.0}, {"a": 3.0, "b": 2.0}]
        assert combine_phases(per_rank, "max") == {"a": 3.0, "b": 2.0}
        assert combine_phases(per_rank, "mean") == {"a": 2.0, "b": 1.0}

    def test_missing_keys_default_zero(self):
        out = combine_phases([{"a": 1.0}, {"b": 2.0}], "max")
        assert out == {"a": 1.0, "b": 2.0}

    def test_empty(self):
        assert combine_phases([]) == {}

    def test_fractions(self):
        fr = phase_fractions({"a": 1.0, "b": 3.0})
        assert fr["a"] == pytest.approx(0.25)
        assert fr["b"] == pytest.approx(0.75)

    def test_fractions_of_zero_total(self):
        assert phase_fractions({"a": 0.0}) == {"a": 0.0}


class TestTrafficSnapshot:
    def test_diff_isolates_section(self):
        rt = Runtime(2)
        before = TrafficSnapshot.capture(rt)
        rt.run(lambda comm: comm.allreduce(1))
        after = TrafficSnapshot.capture(rt)
        delta = after.diff(before)
        assert delta.collective_bytes.get("allreduce", 0) > 0
        assert delta.msgs_sent == 0
