"""Splitter determination (Algorithms 2+3) tests.

The central invariant: for every boundary, some achievable left-count in
``[L, U]`` is within tolerance of the target, splitter values are
monotone, and the realized ranks reproduce the requested capacities.
"""

import numpy as np
import pytest

from repro.core import SplitterConfig, find_splitters
from repro.core.multiselect import SplitterConvergenceError
from repro.mpi import SPMDError


def _find(run, parts, caps=None, eps=0.0, config=None):
    p = len(parts)

    def prog(comm):
        return find_splitters(
            comm, np.sort(parts[comm.rank]), capacities=caps, eps=eps, config=config
        )

    return run(p, prog)


def _assert_valid(parts, res, eps=0.0):
    """Check the splitter result against a global oracle."""
    allk = np.sort(np.concatenate([np.asarray(q) for q in parts]))
    n = allk.size
    p = len(parts)
    tol = int(np.floor(eps * n / (2 * p)))
    assert res.nboundaries == p - 1
    prev = None
    for i in range(p - 1):
        v = res.values[i]
        L = np.searchsorted(allk, v, side="left")
        U = np.searchsorted(allk, v, side="right")
        assert res.lower[i] == L and res.upper[i] == U, f"bounds wrong at {i}"
        r = res.realized_ranks[i]
        assert L <= r <= U, f"realized rank not achievable at {i}"
        assert abs(r - res.targets[i]) <= tol, f"tolerance violated at {i}"
        if prev is not None:
            assert v >= prev, "splitter values must be monotone"
            assert r >= res.realized_ranks[i - 1], "realized ranks must be monotone"
        prev = v


class TestFindSplitters:
    @pytest.mark.parametrize("p", [2, 3, 5, 8])
    def test_uniform_ints(self, run, rng, p):
        parts = [rng.integers(0, 10**9, 2000).astype(np.uint64) for _ in range(p)]
        res = _find(run, parts)[0]
        _assert_valid(parts, res)

    def test_normal_floats(self, run, rng):
        parts = [rng.normal(size=1500) for _ in range(6)]
        res = _find(run, parts)[0]
        _assert_valid(parts, res)

    def test_float32(self, run, rng):
        parts = [rng.normal(size=1500).astype(np.float32) for _ in range(4)]
        res = _find(run, parts)[0]
        _assert_valid(parts, res)
        assert res.values.dtype == np.float32

    def test_heavy_duplicates(self, run, rng):
        parts = [rng.integers(0, 4, 3000).astype(np.int64) for _ in range(5)]
        res = _find(run, parts)[0]
        _assert_valid(parts, res)

    def test_all_equal(self, run):
        parts = [np.full(1000, 7, dtype=np.int64) for _ in range(4)]
        res = _find(run, parts)[0]
        _assert_valid(parts, res)
        assert res.rounds == 0  # resolved by the min-run pre-acceptance

    def test_sparse_partitions(self, run, rng):
        parts = [
            rng.integers(0, 10**6, 0 if r % 2 else 2000).astype(np.int64)
            for r in range(6)
        ]
        res = _find(run, parts)[0]
        _assert_valid(parts, res)

    def test_single_holder(self, run, rng):
        parts = [rng.integers(0, 1000, 4000).astype(np.int64)] + [
            np.zeros(0, dtype=np.int64) for _ in range(3)
        ]
        res = _find(run, parts)[0]
        _assert_valid(parts, res)
        # trailing empty ranks: boundaries at the global end
        assert res.realized_ranks[-1] == 4000

    def test_negative_keys(self, run, rng):
        parts = [rng.integers(-10**6, 10**6, 1500).astype(np.int64) for _ in range(4)]
        res = _find(run, parts)[0]
        _assert_valid(parts, res)

    def test_nearly_sorted(self, run):
        parts = [np.arange(r * 1000, (r + 1) * 1000, dtype=np.int64) for r in range(4)]
        res = _find(run, parts)[0]
        _assert_valid(parts, res)

    def test_custom_capacities(self, run, rng):
        parts = [rng.integers(0, 10**6, 1000).astype(np.int64) for _ in range(4)]
        caps = [4000, 0, 0, 0]
        res = _find(run, parts, caps=caps)[0]
        _assert_valid(parts, res)
        assert res.realized_ranks.tolist() == [4000, 4000, 4000]

    def test_capacities_must_sum(self, run, rng):
        parts = [rng.integers(0, 100, 10).astype(np.int64) for _ in range(2)]
        with pytest.raises(SPMDError):
            _find(run, parts, caps=[5, 6])

    def test_eps_reduces_rounds(self, run, rng):
        parts = [rng.integers(0, 10**9, 4000).astype(np.uint64) for _ in range(6)]
        exact = _find(run, parts, eps=0.0)[0]
        loose = _find(run, parts, eps=0.1)[0]
        _assert_valid(parts, loose, eps=0.1)
        assert loose.rounds < exact.rounds

    def test_empty_world(self, run):
        parts = [np.zeros(0, dtype=np.int64) for _ in range(3)]
        res = _find(run, parts)[0]
        assert res.total == 0
        assert res.rounds == 0

    def test_single_rank(self, run, rng):
        parts = [rng.normal(size=100)]
        res = _find(run, parts)[0]
        assert res.nboundaries == 0

    def test_replicated_result(self, run, rng):
        parts = [rng.normal(size=500) for _ in range(4)]
        out = _find(run, parts)
        for r in out[1:]:
            assert np.array_equal(r.values, out[0].values)
            assert np.array_equal(r.realized_ranks, out[0].realized_ranks)

    def test_rounds_bounded_by_key_width(self, run, rng):
        parts = [rng.integers(0, 2**16, 4000).astype(np.uint64) for _ in range(4)]
        res = _find(run, parts)[0]
        assert res.rounds <= 16 + 2

    def test_rounds_independent_of_p(self, run, rng):
        rounds = []
        for p in (2, 4, 8):
            parts = [rng.integers(0, 10**9, 2000).astype(np.uint64) for _ in range(p)]
            rounds.append(_find(run, parts)[0].rounds)
        assert max(rounds) - min(rounds) <= 6  # §V-A: P does not drive rounds

    def test_convergence_guard(self, run, rng):
        parts = [rng.normal(size=500) for _ in range(4)]
        cfg = SplitterConfig(max_rounds=1)
        with pytest.raises(SPMDError) as ei:
            _find(run, parts, config=cfg)
        assert isinstance(
            ei.value.failures[min(ei.value.failures)], SplitterConvergenceError
        )

    def test_2d_rejected(self, run):
        def prog(comm):
            return find_splitters(comm, np.zeros((2, 2)))

        with pytest.raises(SPMDError):
            run(2, prog)

    def test_nonnumeric_rejected(self, run):
        def prog(comm):
            return find_splitters(comm, np.array(["a", "b"]))

        with pytest.raises(SPMDError):
            run(2, prog)


class TestSplitterConfigs:
    @pytest.mark.parametrize(
        "config",
        [
            SplitterConfig(initial_guess="sample"),
            SplitterConfig(initial_guess="sample", sample_factor=32),
            SplitterConfig(cross_probe=True),
            SplitterConfig(initial_guess="sample", cross_probe=True),
        ],
        ids=["sample", "sample32", "crossprobe", "both"],
    )
    def test_configs_stay_correct(self, run, rng, config):
        parts = [rng.integers(0, 10**9, 2000).astype(np.uint64) for _ in range(5)]
        res = _find(run, parts, config=config)[0]
        _assert_valid(parts, res)

    def test_cross_probe_never_slower(self, run, rng):
        parts = [rng.normal(size=3000) for _ in range(8)]
        plain = _find(run, parts)[0]
        crossed = _find(run, parts, config=SplitterConfig(cross_probe=True))[0]
        assert crossed.rounds <= plain.rounds

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SplitterConfig(initial_guess="bogus")
        with pytest.raises(ValueError):
            SplitterConfig(sample_factor=0)
        with pytest.raises(ValueError):
            SplitterConfig(max_rounds=0)
