"""Benchmark harness: statistics, trials, Series containers, experiments."""

import json

import numpy as np
import pytest

from repro.bench import (
    Series,
    fig4_shared_memory,
    format_table,
    iterations_experiment,
    median_ci,
    merge_strategy_study,
    repeat_sort_trials,
    run_sort_trial,
    table1_machine,
)
from repro.machine import supermuc_phase2


class TestMedianCi:
    def test_median_value(self):
        stats = median_ci([3.0, 1.0, 2.0, 5.0, 4.0])
        assert stats.median == 3.0
        assert stats.ci_low <= stats.median <= stats.ci_high

    def test_small_samples_span_range(self):
        stats = median_ci([1.0, 9.0])
        assert stats.ci_low == 1.0 and stats.ci_high == 9.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median_ci([])

    def test_ci_narrows_with_samples(self):
        rng = np.random.default_rng(0)
        small = median_ci(rng.normal(10, 1, 5).tolist())
        large = median_ci(rng.normal(10, 1, 200).tolist())
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)


class TestSeries:
    def test_table_renders(self):
        s = Series("exp", "title", ["a", "b"])
        s.add(a=1, b=2.5)
        s.add(a=10, b=0.00001)
        text = s.table()
        assert "exp" in text and "title" in text
        assert "10" in text

    def test_save_load_roundtrip(self, tmp_path):
        s = Series("exp1", "t", ["x"], params={"p": 4}, notes="n")
        s.add(x=1.5)
        path = s.save(tmp_path)
        loaded = Series.load(path)
        assert loaded.rows == [{"x": 1.5}]
        assert loaded.params == {"p": 4}
        assert json.loads(path.read_text())["experiment"] == "exp1"

    def test_column_accessor(self):
        s = Series("e", "t", ["x"])
        s.add(x=1)
        s.add(x=2)
        assert s.column("x") == [1, 2]

    def test_format_table_empty(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestTrials:
    def test_run_sort_trial_dash(self):
        trial = run_sort_trial(
            8, 512, algo="dash", machine=supermuc_phase2(), ranks_per_node=8
        )
        assert trial.total > 0
        assert trial.rounds > 0
        assert set(trial.phases) >= {"local_sort", "splitting", "exchange", "merge"}

    @pytest.mark.parametrize("algo", ["hss", "sample_sort", "psrs"])
    def test_run_sort_trial_baselines(self, algo):
        trial = run_sort_trial(
            4, 512, algo=algo, machine=supermuc_phase2(), ranks_per_node=4
        )
        assert trial.total > 0

    def test_unknown_algo(self):
        with pytest.raises(KeyError):
            run_sort_trial(2, 64, algo="nope")

    def test_repeat_produces_stats(self):
        stats, trials = repeat_sort_trials(
            4, 256, repeats=3, warmup=1, machine=supermuc_phase2(), ranks_per_node=4
        )
        assert stats.n == 3
        assert len(trials) == 3
        assert stats.ci_low <= stats.median <= stats.ci_high

    @pytest.mark.parametrize("algo", ["dash", "hss", "sample_sort", "psrs"])
    def test_trial_records_carry_rounds(self, algo):
        # every algorithm's trial reports histogramming rounds (1 for the
        # single-round baselines), so harness output can feed
        # repro.model.calibrate.fit_round_count directly
        trial = run_sort_trial(
            4, 512, algo=algo, machine=supermuc_phase2(), ranks_per_node=4
        )
        assert isinstance(trial.rounds, int) and trial.rounds >= 1
        if algo in ("sample_sort", "psrs"):
            assert trial.rounds == 1

    def test_trials_feed_round_calibration(self):
        from repro.model import fit_round_count

        trials = [
            run_sort_trial(4, 512, seed=s, machine=supermuc_phase2(), ranks_per_node=4)
            for s in (1, 2, 3)
        ]
        fitted = fit_round_count(trials)
        assert min(t.rounds for t in trials) <= fitted <= max(t.rounds for t in trials)

    def test_plan_auto_trial(self, tmp_path):
        from repro.tune import PlanCache

        cache = PlanCache(tmp_path / "plans.json")
        machine = supermuc_phase2(nodes=2)
        first = run_sort_trial(
            4, 512, plan="auto", plan_cache=cache, machine=machine, ranks_per_node=2
        )
        assert first.total > 0
        assert first.extra["plan_id"] and first.extra["plan_algo"]
        assert first.extra["plan_cache_hit"] is False
        second = run_sort_trial(
            4, 512, plan="auto", plan_cache=cache, machine=machine, ranks_per_node=2
        )
        assert second.extra["plan_cache_hit"] is True
        assert second.extra["plan_id"] == first.extra["plan_id"]

    def test_plan_argument_validated(self):
        with pytest.raises(ValueError):
            run_sort_trial(2, 64, plan="magic")


class TestExperimentsFast:
    def test_table1(self):
        s = table1_machine()
        text = s.table()
        assert "E5-2697v3" in text
        assert any("5.1" in str(r.get("value")) for r in s.rows)

    def test_fig4_crossover(self):
        s = fig4_shared_memory()
        rows = {r["numa_domains"]: r for r in s.rows}
        assert rows[1]["winner"] == "tbb"
        for d in (2, 3, 4):
            assert rows[d]["winner"] == "dash"

    def test_merge_study_headline(self):
        s = merge_strategy_study(ks=(4, 1024), threads=(2, 28))
        rows = {(r["k"], r["threads"]): r for r in s.rows}
        assert rows[(4, 2)]["winner"] in ("tournament", "binary_tree")
        assert rows[(1024, 28)]["winner"] == "sort"

    def test_iterations_tracks_key_width(self):
        s = iterations_experiment(repeats=1, n_per_rank=1 << 10)
        by_dist = {}
        for r in s.rows:
            by_dist.setdefault(r["dist"], []).append(r["rounds_med"])
        # f32 resolves in fewer rounds than f64 at the same N
        assert np.median(by_dist["normal_f32"]) <= np.median(by_dist["normal_f64"])
        # independence from P: spread across P values is small
        for dist, rounds in by_dist.items():
            assert max(rounds) - min(rounds) <= 8, (dist, rounds)
