"""The sort service: admission, batching, queries, chaos, determinism."""

import numpy as np
import pytest

import repro
from repro.mpi import run_spmd
from repro.serve import (
    AdmissionPolicy,
    JobSpec,
    MalformedJobError,
    QueueFullError,
    QuotaExceededError,
    ServiceChaos,
    SortService,
    make_chaos,
    make_workload,
    nearest_rank,
    oracle_all,
)
from repro.serve.batch import demux_output, plan_batches
from repro.tune import MemoryPlanCache
from repro.tune.planner import dry_run_count

P = 4


def _spec(kind="sort", tenant="t0", dataset="d0", **kw):
    kw.setdefault("n_per_rank", 64 if kind == "sort" else 0)
    return JobSpec(kind=kind, tenant=tenant, dataset=dataset, **kw)


def _served(**kwargs):
    service = SortService(P, **kwargs)
    workload = make_workload(P, seed=0)
    service.replay(workload)
    return service, workload


class TestJobModel:
    def test_malformed_specs_rejected_with_type(self):
        with pytest.raises(MalformedJobError):
            JobSpec(kind="shuffle", tenant="t", dataset="d")
        with pytest.raises(MalformedJobError):
            _spec(kind="sort", n_per_rank=0)
        with pytest.raises(MalformedJobError):
            _spec(kind="percentile", pcts=())
        with pytest.raises(MalformedJobError):
            _spec(kind="percentile", pcts=(101.0,))
        with pytest.raises(MalformedJobError):
            _spec(kind="top_k", k=0)
        with pytest.raises(MalformedJobError):
            _spec(kind="range_query", lo=5.0, hi=1.0)

    def test_spec_roundtrip_rejects_unknown_fields(self):
        spec = _spec(kind="percentile", pcts=(50.0,))
        assert JobSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(MalformedJobError):
            JobSpec.from_dict({**spec.to_dict(), "shard": 3})


class TestAdmission:
    def test_queue_full_is_typed_and_recorded(self):
        service = SortService(P, policy=AdmissionPolicy(max_queue_depth=2))
        service.submit(_spec(dataset="a"))
        service.submit(_spec(dataset="b"))
        with pytest.raises(QueueFullError):
            service.submit(_spec(dataset="c"))
        # the rejection consumed a job id and left a REJECTED record
        assert service.jobs[2].state == "REJECTED"
        assert service.jobs[2].error == "queue_full"
        assert service.registry.value(
            "serve_jobs_rejected_total", {"reason": "queue_full"}
        ) == 1

    def test_tenant_quota_is_per_tenant(self):
        service = SortService(P, policy=AdmissionPolicy(max_per_tenant=1))
        service.submit(_spec(tenant="a", dataset="x"))
        with pytest.raises(QuotaExceededError):
            service.submit(_spec(tenant="a", dataset="y"))
        service.submit(_spec(tenant="b", dataset="x"))  # other tenant fine

    def test_rejected_ids_keep_sequence_deterministic(self):
        service = SortService(P, policy=AdmissionPolicy(max_per_tenant=1))
        service.submit(_spec(tenant="a", dataset="x"))
        with pytest.raises(QuotaExceededError):
            service.submit(_spec(tenant="a", dataset="y"))
        job = service.submit(_spec(tenant="b", dataset="x"))
        assert job.job_id == 2

    def test_query_for_unknown_dataset_fails_typed(self):
        service = SortService(P)
        service.submit(_spec(kind="top_k", dataset="never-sorted", k=3))
        service.drain()
        job = service.jobs[0]
        assert job.state == "FAILED"
        assert job.error == "unknown_dataset"


class TestBatching:
    def test_compatible_jobs_fuse_and_demux(self):
        service, _ = _served()
        fused = [
            e for e in service.events if e["kind"] == "sort" and e["fused"]
        ]
        assert fused, "workload must exercise shared epochs"
        assert max(len(e["jobs"]) for e in fused) >= 3

    def test_floats_never_fuse(self):
        service, workload = _served()
        float_ids = [
            i for i, s in enumerate(workload)
            if s.kind == "sort" and s.dist == "normal_f64"
        ]
        assert float_ids
        for e in service.events:
            if e["kind"] == "sort" and set(float_ids) & set(e["jobs"]):
                assert not e["fused"] and len(e["jobs"]) == 1

    def test_demux_roundtrip_is_exact(self, rng):
        parts = [
            [rng.integers(0, 2**20, size=37).astype(np.uint64) for _ in range(2)]
            for _ in range(3)
        ]
        packed = []
        for slot, job_parts in enumerate(parts):
            for arr in job_parts:
                packed.append((np.uint64(slot) << np.uint64(21)) | arr)
        output = np.sort(np.concatenate(packed))
        runs = demux_output(output, 3, 21, np.dtype(np.uint64))
        for slot, job_parts in enumerate(parts):
            want = np.sort(np.concatenate(job_parts))
            assert np.array_equal(runs[slot], want)

    def test_plan_batches_respects_epoch_cap(self):
        service = SortService(P, policy=AdmissionPolicy(max_epoch_jobs=2))
        for i in range(5):
            service.submit(_spec(dataset=f"d{i}", n_per_rank=64, seed=i + 1))
        service.drain()
        sort_epochs = [e for e in service.events if e["kind"] == "sort"]
        assert all(len(e["jobs"]) <= 2 for e in sort_epochs)
        assert sum(len(e["jobs"]) for e in sort_epochs) == 5


class TestResults:
    def test_every_job_matches_oracle(self):
        service, workload = _served()
        expected = oracle_all(workload, P)
        assert len(expected) >= 32
        kinds = {s.kind for s in workload}
        assert kinds == {"sort", "percentile", "top_k", "range_query"}
        assert len({s.tenant for s in workload}) >= 2
        for job_id, want in enumerate(expected):
            job = service.jobs[job_id]
            assert job.state == "DONE", (job_id, job.error)
            assert job.result.value == want, job_id

    def test_query_epochs_move_no_data(self):
        service, _ = _served()
        assert any(e["kind"] == "query" for e in service.events)
        assert service.registry.value("serve_query_alltoallv_total") == 0

    def test_queries_after_load_run_without_planning(self, tmp_path):
        service, _ = _served()
        service.save(tmp_path / "state")
        loaded = SortService.load(tmp_path / "state")
        assert loaded.datasets.keys() == service.datasets.keys()
        before = dry_run_count()
        loaded.submit(
            _spec(kind="percentile", tenant="acme", dataset="events-0",
                  pcts=(0.0, 50.0, 100.0))
        )
        loaded.drain()
        job = loaded.jobs[max(loaded.jobs)]
        assert job.state == "DONE"
        assert dry_run_count() == before  # index query: no sort, no planning
        src = service.jobs[
            max(
                j.job_id for j in service.jobs.values()
                if j.spec.kind == "sort" and j.spec.dataset == "events-0"
            )
        ]
        assert job.result.value[100.0] == src.result.value["max"]


class TestWarmPlans:
    def test_repeat_fingerprints_hit_plan_cache(self):
        service, _ = _served()
        assert service.registry.value("serve_warm_plan_hits_total") >= 1

    def test_shared_cache_makes_second_run_dry_run_free(self):
        cache = MemoryPlanCache()
        first = SortService(P, plan_cache=cache)
        first.replay(make_workload(P, seed=0))
        before = dry_run_count()
        second = SortService(P, plan_cache=cache)
        second.replay(make_workload(P, seed=0))
        assert dry_run_count() == before  # every epoch warm: zero dry runs
        assert second.registry.value("serve_plan_dry_runs_total") == 0


class TestDeterminism:
    def test_two_replays_bit_identical(self):
        a, _ = _served(trace=True)
        b, _ = _served(trace=True)
        assert [e["jobs"] for e in a.events] == [e["jobs"] for e in b.events]
        assert a.fingerprint() == b.fingerprint()

    def test_chaos_replays_bit_identical_and_match_clean_results(self):
        chaos = make_chaos(make_workload(P, seed=0))
        a, _ = _served(trace=True, chaos=chaos)
        b, _ = _served(trace=True, chaos=chaos)
        assert a.fingerprint() == b.fingerprint()
        clean, workload = _served()
        for job_id in range(len(workload)):
            assert a.jobs[job_id].result.value == clean.jobs[job_id].result.value


class TestChaos:
    def test_jobs_survive_mid_epoch_crashes(self):
        workload = make_workload(P, seed=0)
        chaos = make_chaos(workload)
        n_crashes = sum(len(v) for v in chaos.crashes.values())
        assert n_crashes >= 2
        service = SortService(P, chaos=chaos)
        service.replay(workload)
        assert service.p == P  # logical width never changes
        for job_id in range(len(workload)):
            assert service.jobs[job_id].state == "DONE"
        assert service.registry.value("serve_crashes_survived_total") == n_crashes
        assert service.registry.value("serve_spares_used_total") >= n_crashes

    def test_chaos_results_equal_oracle(self):
        workload = make_workload(P, seed=0)
        service = SortService(P, chaos=make_chaos(workload))
        service.replay(workload)
        for job_id, want in enumerate(oracle_all(workload, P)):
            assert service.jobs[job_id].result.value == want, job_id


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        service, _ = _served()
        service.save(tmp_path / "svc")
        loaded = SortService.load(tmp_path / "svc")
        assert loaded.clock == service.clock
        assert loaded.next_epoch == service.next_epoch
        assert {j.job_id: j.state for j in loaded.jobs.values()} == {
            j.job_id: j.state for j in service.jobs.values()
        }
        for key, ds in service.datasets.items():
            other = loaded.datasets[key]
            assert other.index == ds.index
            for mine, theirs in zip(ds.parts, other.parts):
                assert np.array_equal(mine, theirs)

    def test_job_ids_continue_after_load(self, tmp_path):
        service, workload = _served()
        service.save(tmp_path / "svc")
        loaded = SortService.load(tmp_path / "svc")
        job = loaded.submit(_spec(kind="top_k", tenant="acme",
                                  dataset="events-0", k=2))
        assert job.job_id == len(workload)


class TestServeIndex:
    def test_nearest_rank_edges(self):
        assert nearest_rank(0.0, 10) == 0
        assert nearest_rank(100.0, 10) == 9  # the p100 truncation bug
        assert nearest_rank(50.0, 10) == 4
        assert nearest_rank(100.0, 1) == 0
        with pytest.raises(ValueError):
            nearest_rank(101.0, 10)
        with pytest.raises(ValueError):
            nearest_rank(50.0, 0)


class TestPercentileTopK:
    """The repro.percentile / repro.top_k public API (satellite of serve)."""

    def test_percentile_matches_numpy_nearest_rank(self, rng):
        locals_ = [rng.normal(size=101 + r) for r in range(3)]
        oracle = np.sort(np.concatenate(locals_))
        n = oracle.size

        def program(comm):
            return repro.percentile(comm, locals_[comm.rank], (0.0, 37.0, 100.0))

        for result in run_spmd(3, program):
            for pct, value in result.items():
                assert value == oracle[nearest_rank(pct, n)]

    def test_percentile_scalar_form(self):
        def program(comm):
            local = np.arange(comm.rank * 10, comm.rank * 10 + 10)
            return repro.percentile(comm, local, 100.0)

        assert run_spmd(3, program) == [29, 29, 29]

    def test_top_k_descending_with_duplicate_cutoff(self):
        def program(comm):
            local = np.array([5, 7, 7, comm.rank], dtype=np.int64)
            return repro.top_k(comm, local, 4)

        for result in run_spmd(3, program):
            assert result.tolist() == [7, 7, 7, 7]

    def test_top_k_larger_than_total_returns_everything(self):
        def program(comm):
            return repro.top_k(comm, np.array([comm.rank]), 99)

        for result in run_spmd(3, program):
            assert result.tolist() == [2, 1, 0]
