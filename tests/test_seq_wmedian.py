"""Weighted median (Definition 2) unit + property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq import is_weighted_median, weighted_median


class TestWeightedMedianBasics:
    def test_uniform_weights_give_lower_median(self):
        assert weighted_median(np.array([1, 2, 3, 4]), np.ones(4)) == 2

    def test_odd_uniform_weights_give_median(self):
        assert weighted_median(np.array([5, 1, 3]), np.ones(3)) == 3

    def test_heavy_weight_dominates(self):
        v = np.array([1, 2, 100])
        w = np.array([1, 1, 10])
        assert weighted_median(v, w) == 100

    def test_definition2_example(self):
        # half mass below must stay strictly < 1/2
        v = np.array([1, 2])
        w = np.array([1, 1])
        m = weighted_median(v, w)
        assert m == 1
        assert is_weighted_median(v, w, 1)
        assert not is_weighted_median(v, w, 2)

    def test_duplicate_values_merge_mass(self):
        v = np.array([5, 5, 1])
        w = np.array([1, 1, 6])
        assert weighted_median(v, w) == 1

    def test_zero_weight_entries_ignored(self):
        v = np.array([100, 1, 2, 3])
        w = np.array([0, 1, 1, 1])
        assert weighted_median(v, w) == 2

    def test_single_element(self):
        assert weighted_median(np.array([9]), np.array([2.5])) == 9

    def test_unsorted_input(self):
        v = np.array([9, 1, 5, 3, 7])
        assert weighted_median(v, np.ones(5)) == 5

    def test_errors(self):
        with pytest.raises(ValueError):
            weighted_median(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            weighted_median(np.array([1]), np.array([-1]))
        with pytest.raises(ValueError):
            weighted_median(np.array([1]), np.array([0]))
        with pytest.raises(ValueError):
            weighted_median(np.array([1, 2]), np.array([1]))


class TestWeightedMedianProperties:
    @given(
        pairs=st.lists(
            st.tuples(st.integers(-50, 50), st.integers(0, 10)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_result_satisfies_definition(self, pairs):
        v = np.array([p[0] for p in pairs], dtype=np.int64)
        w = np.array([p[1] for p in pairs], dtype=np.int64)
        if w.sum() == 0:
            w[0] = 1
        m = weighted_median(v, w)
        assert is_weighted_median(v, w, m)
        assert m in v

    @given(
        vals=st.lists(st.integers(-100, 100), min_size=1, max_size=31, unique=True)
    )
    @settings(max_examples=80, deadline=None)
    def test_unit_weights_equal_lower_median(self, vals):
        v = np.array(vals, dtype=np.int64)
        m = weighted_median(v, np.ones(len(vals)))
        ref = np.sort(v)[(len(vals) - 1) // 2]
        assert m == ref

    def test_discards_at_least_quarter(self, rng):
        """The DSELECT guarantee: the weighted median of per-partition
        medians (weighted by sizes) discards >= 1/4 of the elements."""
        for _ in range(25):
            parts = [
                rng.normal(size=rng.integers(1, 200)) for _ in range(rng.integers(2, 9))
            ]
            meds = np.array([np.sort(p)[p.size // 2] for p in parts])
            sizes = np.array([p.size for p in parts], dtype=np.float64)
            m = weighted_median(meds, sizes)
            everything = np.concatenate(parts)
            below = np.count_nonzero(everything < m)
            above = np.count_nonzero(everything > m)
            n = everything.size
            assert below <= 3 * n / 4 + 1
            assert above <= 3 * n / 4 + 1
