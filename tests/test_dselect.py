"""Distributed selection (Algorithm 1) tests."""

import numpy as np
import pytest

from repro.core import dselect
from repro.core.dselect import DSelectResult
from repro.mpi import SPMDError


def _run_select(run, p, parts, k, **kwargs):
    def prog(comm):
        return dselect(comm, parts[comm.rank], k, **kwargs)

    return run(p, prog)


class TestDSelect:
    def test_matches_oracle_uniform(self, run, rng):
        p = 4
        parts = [rng.integers(0, 10**6, 3000).astype(np.int64) for _ in range(p)]
        ref = np.sort(np.concatenate(parts))
        for k in (0, 1, 6000, 11999):
            out = _run_select(run, p, parts, k)
            assert all(r.value == ref[k] for r in out)

    def test_all_ranks_same_answer(self, run, rng):
        p = 5
        parts = [rng.normal(size=1000) for _ in range(p)]
        out = _run_select(run, p, parts, 2500)
        assert len({float(r.value) for r in out}) == 1

    def test_empty_partitions(self, run, rng):
        p = 4
        parts = [
            rng.integers(0, 100, 0 if r % 2 else 2000).astype(np.int64)
            for r in range(p)
        ]
        ref = np.sort(np.concatenate([q for q in parts if q.size]))
        out = _run_select(run, p, parts, 1234)
        assert out[0].value == ref[1234]

    def test_duplicates(self, run, rng):
        p = 4
        parts = [rng.integers(0, 3, 2000).astype(np.int64) for _ in range(p)]
        ref = np.sort(np.concatenate(parts))
        for k in (0, 4000, 7999):
            out = _run_select(run, p, parts, k)
            assert out[0].value == ref[k]

    def test_all_equal(self, run):
        parts = [np.full(100, 9, dtype=np.int64) for _ in range(3)]
        out = _run_select(run, 3, parts, 150)
        assert out[0].value == 9

    def test_single_rank(self, run, rng):
        parts = [rng.normal(size=5000)]
        ref = np.sort(parts[0])
        out = _run_select(run, 1, parts, 2500)
        assert out[0].value == ref[2500]

    def test_small_problem_uses_gather_fallback(self, run, rng):
        parts = [rng.integers(0, 50, 10).astype(np.int64) for _ in range(4)]
        out = _run_select(run, 4, parts, 20)
        assert out[0].gathered_fallback
        assert out[0].value == np.sort(np.concatenate(parts))[20]

    def test_large_problem_iterates(self, run, rng):
        parts = [rng.normal(size=4000) for _ in range(4)]
        out = _run_select(run, 4, parts, 8000, cutoff=256)
        assert out[0].rounds >= 1
        assert out[0].value == np.sort(np.concatenate(parts))[8000]

    def test_rounds_logarithmic(self, run, rng):
        """The weighted-median pivot discards >= 1/4 per round: the round
        count stays well below log_{4/3}(N)."""
        p = 4
        parts = [rng.normal(size=8000) for _ in range(p)]
        out = _run_select(run, p, parts, 16000, cutoff=64)
        n_total = 32000
        assert out[0].rounds <= np.log(n_total) / np.log(4 / 3)

    def test_k_out_of_range(self, run, rng):
        parts = [rng.normal(size=10) for _ in range(2)]
        with pytest.raises(SPMDError):
            _run_select(run, 2, parts, 20)

    def test_2d_rejected(self, run):
        parts = [np.zeros((2, 2)) for _ in range(2)]
        with pytest.raises(SPMDError):
            _run_select(run, 2, parts, 0)

    def test_result_type(self, run, rng):
        parts = [rng.normal(size=100) for _ in range(2)]
        out = _run_select(run, 2, parts, 50)
        assert isinstance(out[0], DSelectResult)

    def test_skewed_sizes(self, run, rng):
        parts = [
            rng.integers(0, 10**6, n).astype(np.int64)
            for n in (10000, 10, 3000, 1)
        ]
        ref = np.sort(np.concatenate(parts))
        for k in (0, 6500, 13010):
            out = _run_select(run, 4, parts, k)
            assert out[0].value == ref[k]
