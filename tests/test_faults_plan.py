"""Unit tests for the deterministic fault-plan machinery."""

import pytest

from repro.faults import CrashEvent, FaultPlan, FaultSpec, FaultStats


class TestSpecValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultSpec(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(dup_rate=-0.1)

    def test_crash_event_needs_a_trigger(self):
        with pytest.raises(ValueError):
            CrashEvent(rank=0)

    def test_crash_rank_bounds(self):
        spec = FaultSpec(crashes=(CrashEvent(rank=9, at_op=1),))
        with pytest.raises(ValueError):
            FaultPlan(spec, seed=1, size=4)

    def test_at_least_one_survivor(self):
        with pytest.raises(ValueError):
            FaultPlan(FaultSpec(crash_ranks=4), seed=1, size=4)


class TestDeterminism:
    def test_same_seed_same_link_decisions(self):
        spec = FaultSpec(drop_rate=0.3, dup_rate=0.2, delay_rate=0.2)
        a = FaultPlan(spec, seed=7, size=4)
        b = FaultPlan(spec, seed=7, size=4)
        seq_a = [a.link_event(0, 1) for _ in range(200)]
        seq_b = [b.link_event(0, 1) for _ in range(200)]
        assert seq_a == seq_b
        assert any(f.drop for f in seq_a)
        assert any(f.duplicate for f in seq_a)
        assert any(f.delay_factor for f in seq_a)

    def test_different_seeds_differ(self):
        spec = FaultSpec(drop_rate=0.3)
        a = FaultPlan(spec, seed=7, size=4)
        b = FaultPlan(spec, seed=8, size=4)
        assert [f.drop for f in (a.link_event(0, 1) for _ in range(200))] != \
               [f.drop for f in (b.link_event(0, 1) for _ in range(200))]

    def test_links_and_streams_are_independent(self):
        spec = FaultSpec(drop_rate=0.5)
        plan = FaultPlan(spec, seed=3, size=4)
        # interleave two links and a second stream arbitrarily ...
        mixed = {}
        for i in range(100):
            mixed.setdefault((0, 1, 0), []).append(plan.link_event(0, 1))
            if i % 2:
                mixed.setdefault((1, 0, 0), []).append(plan.link_event(1, 0))
            if i % 3 == 0:
                mixed.setdefault((0, 1, 1), []).append(plan.link_event(0, 1, 1))
        # ... and each must match a pristine replay of that link alone
        for (src, dst, stream), got in mixed.items():
            fresh = FaultPlan(spec, seed=3, size=4)
            assert got == [fresh.link_event(src, dst, stream)
                           for _ in range(len(got))]

    def test_event_identity_bypasses_counter(self):
        spec = FaultSpec(drop_rate=0.5)
        plan = FaultPlan(spec, seed=5, size=4)
        before = plan.link_event(0, 1, 1, event=(2, 7, 0))
        # counter-based traffic in between must not change the decision
        for _ in range(50):
            plan.link_event(0, 1)
        assert plan.link_event(0, 1, 1, event=(2, 7, 0)) == before
        assert plan.link_event(0, 1, 1, event=(2, 7, 1)) != before or \
            plan.link_event(0, 1, 1, event=(3, 7, 0)) != before

    def test_crash_placement_is_deterministic(self):
        spec = FaultSpec(crash_ranks=2, crash_op_range=(5, 50))
        a = FaultPlan(spec, seed=9, size=8)
        b = FaultPlan(spec, seed=9, size=8)
        assert a.crashes == b.crashes
        assert len(a.crashes) == 2
        for ev in a.crashes.values():
            assert 5 <= ev.at_op <= 50

    def test_degrade_windows_inside_horizon(self):
        spec = FaultSpec(degrade_links=3, degrade_duration=1e-3, horizon=10e-3)
        plan = FaultPlan(spec, seed=2, size=4)
        assert len(plan.windows) == 3
        for w in plan.windows:
            assert 0.0 <= w.t0 <= w.t1 <= 10e-3
            assert w.src != w.dst
            mid = (w.t0 + w.t1) / 2
            assert plan.degrade_factor(w.src, w.dst, mid) >= w.factor
            assert plan.degrade_factor(w.src, w.dst, w.t1 + 1.0) == 0.0


class TestCrashNow:
    def test_op_trigger(self):
        plan = FaultPlan(FaultSpec(crashes=(CrashEvent(rank=1, at_op=3),)),
                         seed=1, size=2)
        assert not plan.crash_now(1, 2, 0.0)
        assert plan.crash_now(1, 3, 0.0)
        assert not plan.crash_now(0, 99, 0.0)

    def test_time_trigger(self):
        plan = FaultPlan(FaultSpec(crashes=(CrashEvent(rank=0, at_time=1.0),)),
                         seed=1, size=2)
        assert not plan.crash_now(0, 0, 0.5)
        assert plan.crash_now(0, 0, 1.0)


def test_stats_summary():
    st = FaultStats(dropped=3, duplicated=1, delayed=2, crashed=[2, 0])
    assert "dropped=3" in st.summary()
    assert "crashed=[0, 2]" in st.summary()


def test_describe_mentions_everything():
    spec = FaultSpec(drop_rate=0.1, degrade_links=1, crash_ranks=1)
    text = FaultPlan(spec, seed=4, size=4).describe()
    assert "drop=0.1" in text and "degraded=" in text and "crashes=" in text
