"""Local merge strategies (core.merge) and key packing (core.keys)."""

import numpy as np
import pytest

from repro.core import local_merge, merge_cost, pack_keys, plan_packing, unpack_keys
from repro.core.keys import PackError, PackSpec
from repro.machine import supermuc_phase2


class TestLocalMerge:
    @pytest.fixture
    def chunks(self, rng):
        return [np.sort(rng.integers(0, 100, rng.integers(0, 80))) for _ in range(6)]

    @pytest.mark.parametrize("strategy", ["sort", "binary_tree", "tournament", "adaptive"])
    def test_merges_correctly(self, run, chunks, strategy):
        ref = np.sort(np.concatenate(chunks))

        def prog(comm):
            return local_merge(comm, chunks, strategy=strategy)

        out = run(1, prog)[0]
        assert np.array_equal(out, ref)

    def test_empty_chunks(self, run):
        def prog(comm):
            return local_merge(comm, [np.array([]), np.array([])])

        assert run(1, prog)[0].size == 0

    def test_no_chunks(self, run):
        def prog(comm):
            return local_merge(comm, [])

        assert run(1, prog)[0].size == 0

    def test_unknown_strategy(self, run, chunks):
        def prog(comm):
            return local_merge(comm, chunks, strategy="nope")

        from repro.mpi import SPMDError

        with pytest.raises(SPMDError):
            run(1, prog)

    def test_charges_virtual_time(self, run, chunks):
        def prog(comm):
            t0 = comm.clock
            local_merge(comm, chunks, strategy="sort")
            return comm.clock - t0

        assert run(1, prog)[0] > 0

    def test_adaptive_picks_sort_for_many_small(self, run, rng):
        small = [np.sort(rng.integers(0, 9, 5)) for _ in range(32)]
        ref = np.sort(np.concatenate(small))

        def prog(comm):
            return local_merge(comm, small, strategy="adaptive")

        assert np.array_equal(run(1, prog)[0], ref)


class TestMergeCost:
    def test_strategies_priced_differently(self):
        compute = supermuc_phase2().compute
        n, k = 1 << 20, 64
        sort = merge_cost(compute, n, k, "sort")
        tree = merge_cost(compute, n, k, "binary_tree")
        tourney = merge_cost(compute, n, k, "tournament")
        assert tree < sort  # log2(64)=6 merge passes < full n log n sort
        assert tourney > 0 and sort > 0

    def test_zero_elements(self):
        compute = supermuc_phase2().compute
        assert merge_cost(compute, 0, 4, "sort") == compute.call_overhead

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            merge_cost(supermuc_phase2().compute, 10, 2, "nah")


class TestKeyPacking:
    def test_roundtrip(self, rng):
        keys = rng.integers(0, 10**9, 1000).astype(np.uint64)
        spec = plan_packing(10**9, nranks=64, max_local=1000)
        packed = pack_keys(keys, rank=13, spec=spec)
        assert np.array_equal(unpack_keys(packed, spec), keys)

    def test_packed_keys_unique(self, rng):
        keys = rng.integers(0, 5, 500).astype(np.uint64)  # heavy duplicates
        spec = plan_packing(5, nranks=4, max_local=500)
        p0 = pack_keys(keys, 0, spec)
        p1 = pack_keys(keys, 1, spec)
        both = np.concatenate([p0, p1])
        assert np.unique(both).size == both.size

    def test_order_preserved_key_major(self, rng):
        keys = rng.integers(0, 1000, 300).astype(np.uint64)
        spec = plan_packing(1000, nranks=8, max_local=300)
        packed = pack_keys(keys, 3, spec)
        order_keys = np.argsort(keys, kind="stable")
        order_packed = np.argsort(packed, kind="stable")
        assert np.array_equal(keys[order_packed], keys[order_keys])

    def test_overflow_rejected(self):
        with pytest.raises(PackError):
            PackSpec(key_bits=60, rank_bits=10, index_bits=10)

    def test_negative_keys_rejected(self):
        spec = plan_packing(100, 2, 10)
        with pytest.raises(PackError):
            pack_keys(np.array([-1], dtype=np.int64), 0, spec)

    def test_key_exceeds_plan(self):
        spec = plan_packing(100, 2, 10)
        with pytest.raises(PackError):
            pack_keys(np.array([1 << 30], dtype=np.uint64), 0, spec)

    def test_rank_exceeds_plan(self):
        spec = plan_packing(100, 2, 10)
        with pytest.raises(PackError):
            pack_keys(np.array([1], dtype=np.uint64), 99, spec)

    def test_index_exceeds_plan(self):
        spec = plan_packing(100, 2, max_local=4)
        with pytest.raises(PackError):
            pack_keys(np.arange(100, dtype=np.uint64) % 50, 0, spec)

    def test_float_keys_rejected(self):
        spec = plan_packing(100, 2, 10)
        with pytest.raises(PackError):
            pack_keys(np.array([1.5]), 0, spec)

    def test_empty(self):
        spec = plan_packing(100, 2, 10)
        packed = pack_keys(np.array([], dtype=np.uint64), 0, spec)
        assert packed.size == 0
