"""Auto-tuning subsystem: fingerprints, planner, cache, feedback, autosort."""

import json

import numpy as np
import pytest

from repro.bench.harness import run_sort_trial
from repro.core import SortConfig, SplitterConfig, autosort
from repro.machine import abstract_cluster, supermuc_phase2
from repro.mpi import run_spmd
from repro.tune import (
    PlanCache,
    SortPlan,
    WorkloadFingerprint,
    dry_run_count,
    enumerate_candidates,
    fingerprint_collective,
    fingerprint_partition,
    model_score,
    plan_sort,
    record_feedback,
)
from repro.tune.cache import CacheEntry
from repro.tune.cli import main as tune_main


@pytest.fixture(scope="module")
def machine():
    return abstract_cluster(2, cores_per_node=8)


@pytest.fixture(scope="module")
def fp(machine):
    rng = np.random.default_rng(7)
    local = rng.integers(0, 1 << 32, 4096, dtype=np.uint64)
    return fingerprint_partition(local, p=8, machine=machine, ranks_per_node=8)


def _plan(fp, machine, **kw):
    kw.setdefault("seed", 0)
    return plan_sort(fp, machine, **kw)


# ---------------------------------------------------------------- fingerprint


class TestFingerprint:
    def test_deterministic(self, machine):
        rng = np.random.default_rng(3)
        local = rng.integers(0, 1 << 20, 5000, dtype=np.uint64)
        a = fingerprint_partition(local, p=4, machine=machine)
        b = fingerprint_partition(local.copy(), p=4, machine=machine)
        assert a == b
        assert a.bucket_key() == b.bucket_key()

    def test_shape_fields(self, machine):
        local = np.arange(1000, dtype=np.uint64)
        fp = fingerprint_partition(local, p=4, machine=machine, ranks_per_node=2)
        assert fp.n_total == 4000
        assert fp.p == 4 and fp.ranks_per_node == 2
        assert fp.itemsize == 8 and fp.dtype_kind == "u"
        assert fp.n_per_rank == 1000

    def test_sorted_input_detected(self, machine):
        fp = fingerprint_partition(np.arange(4096, dtype=np.uint64), p=2, machine=machine)
        assert fp.sortedness == 1.0
        assert "ord=presorted" in fp.bucket_key()

    def test_duplicates_detected(self, machine):
        local = np.zeros(4096, dtype=np.uint64)
        fp = fingerprint_partition(local, p=2, machine=machine)
        assert fp.dup_ratio > 0.9
        assert "dup=heavy" in fp.bucket_key()

    def test_skew_detected(self, machine):
        rng = np.random.default_rng(0)
        skewed = rng.exponential(1.0, 8192)
        fp = fingerprint_partition(skewed, p=2, machine=machine)
        assert fp.skew > 0.0 and fp.dtype_kind == "f"

    def test_key_bits_track_value_range(self, machine):
        narrow = fingerprint_partition(
            np.arange(256, dtype=np.uint64), p=2, machine=machine
        )
        wide = fingerprint_partition(
            np.arange(256, dtype=np.uint64) << 40, p=2, machine=machine
        )
        assert narrow.key_bits < wide.key_bits

    def test_bucket_key_includes_machine(self, machine):
        local = np.arange(100, dtype=np.uint64)
        a = fingerprint_partition(local, p=2, machine=machine)
        b = fingerprint_partition(local, p=2, machine=supermuc_phase2(nodes=2))
        assert a.bucket_key() != b.bucket_key()

    def test_near_identical_workloads_share_bucket(self, machine):
        rng = np.random.default_rng(1)
        a = fingerprint_partition(
            rng.integers(0, 1 << 32, 4000, dtype=np.uint64), p=4, machine=machine
        )
        b = fingerprint_partition(
            rng.integers(0, 1 << 32, 4100, dtype=np.uint64), p=4, machine=machine
        )
        assert a.bucket_key() == b.bucket_key()

    def test_serde_roundtrip(self, fp):
        assert WorkloadFingerprint.from_dict(fp.to_dict()) == fp

    def test_serde_rejects_unknown(self, fp):
        data = fp.to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            WorkloadFingerprint.from_dict(data)

    def test_collective_agrees_across_ranks(self, machine):
        def program(comm):
            rng = np.random.default_rng(10 + comm.rank)
            local = rng.integers(0, 1 << 32, 1000 + comm.rank, dtype=np.uint64)
            return fingerprint_collective(comm, local)

        fps = run_spmd(4, program, machine=machine, ranks_per_node=4)
        assert all(f == fps[0] for f in fps)
        assert fps[0].n_total == sum(1000 + r for r in range(4))
        assert fps[0].machine == machine.signature()


# -------------------------------------------------------------------- planner


class TestPlanner:
    def test_paper_default_enumerated_first(self, fp):
        cands = enumerate_candidates(fp)
        assert cands[0].label == "dash/paper-default"
        assert cands[0].config == SortConfig()

    def test_sample_sort_gated_on_eps(self, fp):
        strict = {c.algo for c in enumerate_candidates(fp, eps=0.0)}
        loose = {c.algo for c in enumerate_candidates(fp, eps=0.2)}
        assert "sample_sort" not in strict
        assert "sample_sort" in loose

    def test_model_scores_positive(self, fp, machine):
        for cand in enumerate_candidates(fp, eps=0.2):
            assert model_score(cand, fp, machine) > 0

    def test_plan_deterministic_exact(self, fp, machine):
        a = _plan(fp, machine)
        b = _plan(fp, machine)
        assert a == b  # field-for-field, provenance included

    def test_seed_changes_plan_id(self, fp, machine):
        a = _plan(fp, machine, dry_runs=False, seed=0)
        b = _plan(fp, machine, dry_runs=False, seed=1)
        assert a.plan_id != b.plan_id

    def test_no_dry_runs_mode(self, fp, machine):
        before = dry_run_count()
        plan = _plan(fp, machine, dry_runs=False)
        assert dry_run_count() == before
        assert all(c["dry_s"] is None for c in plan.provenance["candidates"])

    def test_dry_runs_cover_topk_and_control(self, fp, machine):
        before = dry_run_count()
        plan = _plan(fp, machine, top_k=2)
        measured = [c for c in plan.provenance["candidates"] if c["dry_s"] is not None]
        assert dry_run_count() - before == len(measured)
        assert 2 <= len(measured) <= 3
        # the paper default is always measured as the control
        assert any(c["label"] == "dash/paper-default" for c in measured)

    def test_machine_mismatch_rejected(self, fp):
        other = abstract_cluster(4, cores_per_node=4)
        with pytest.raises(ValueError, match="different machine"):
            plan_sort(fp, other)

    def test_plan_serde_roundtrip(self, fp, machine):
        plan = _plan(fp, machine, dry_runs=False)
        assert SortPlan.from_dict(plan.to_dict()) == plan

    def test_plan_serde_rejects_unknown(self, fp, machine):
        data = _plan(fp, machine, dry_runs=False).to_dict()
        data["surprise"] = True
        with pytest.raises(ValueError, match="surprise"):
            SortPlan.from_dict(data)

    def test_provenance_records_versions(self, fp, machine):
        prov = _plan(fp, machine, dry_runs=False).provenance
        assert prov["planner_version"] >= 1 and prov["model_version"] >= 1
        assert prov["fingerprint"] == fp.to_dict()


# ---------------------------------------------------------------------- cache


class TestPlanCache:
    def _plan(self, fp, machine):
        return plan_sort(fp, machine, dry_runs=False, seed=0)

    def test_put_get_roundtrip(self, fp, machine, tmp_path):
        cache = PlanCache(tmp_path / "c.json")
        plan = self._plan(fp, machine)
        cache.put(plan.key, plan)
        assert cache.get(plan.key) == plan

    def test_persists_across_instances(self, fp, machine, tmp_path):
        path = tmp_path / "c.json"
        plan = self._plan(fp, machine)
        PlanCache(path).put(plan.key, plan)
        assert PlanCache(path).get(plan.key) == plan

    def test_miss_returns_none(self, tmp_path):
        assert PlanCache(tmp_path / "c.json").get("nope") is None

    def test_corrupt_file_degrades_to_empty(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{not json")
        assert len(PlanCache(path)) == 0

    def test_wrong_schema_ignored(self, fp, machine, tmp_path):
        path = tmp_path / "c.json"
        plan = self._plan(fp, machine)
        PlanCache(path).put(plan.key, plan)
        data = json.loads(path.read_text())
        data["schema"] = 999
        path.write_text(json.dumps(data))
        assert len(PlanCache(path)) == 0

    def test_stale_model_version_invalidated(self, fp, machine, tmp_path):
        path = tmp_path / "c.json"
        cache = PlanCache(path)
        plan = self._plan(fp, machine)
        cache.put(plan.key, plan)
        data = json.loads(path.read_text())
        entry = data["entries"][plan.key]
        entry["model_version"] = entry["model_version"] + 1
        path.write_text(json.dumps(data))
        stale = PlanCache(path)
        assert stale.get(plan.key) is None  # treated as a miss
        assert plan.key not in stale  # and evicted

    def test_demoted_entry_misses_but_stays(self, fp, machine, tmp_path):
        cache = PlanCache(tmp_path / "c.json")
        plan = self._plan(fp, machine)
        cache.put(plan.key, plan)
        cache.demote(plan.key)
        assert cache.get(plan.key) is None
        assert cache.entry(plan.key).demoted

    def test_hits_counted(self, fp, machine, tmp_path):
        cache = PlanCache(tmp_path / "c.json")
        plan = self._plan(fp, machine)
        cache.put(plan.key, plan)
        cache.get(plan.key)
        cache.get(plan.key)
        assert cache.entry(plan.key).hits == 2

    def test_clear(self, fp, machine, tmp_path):
        cache = PlanCache(tmp_path / "c.json")
        plan = self._plan(fp, machine)
        cache.put(plan.key, plan)
        assert cache.clear() == 1
        assert len(cache) == 0
        assert len(PlanCache(cache.path)) == 0

    def test_entry_serde_roundtrip(self, fp, machine):
        plan = self._plan(fp, machine)
        entry = CacheEntry(plan=plan, model_version=1, planner_version=1,
                           hits=3, feedback=[1.1, 0.9], correction=1.05)
        assert CacheEntry.from_dict(entry.to_dict()) == entry


# ------------------------------------------------------------------- feedback


class TestFeedback:
    def _cached_plan(self, fp, machine, tmp_path):
        cache = PlanCache(tmp_path / "c.json")
        plan = plan_sort(fp, machine, dry_runs=False, seed=0)
        cache.put(plan.key, plan)
        return cache, plan

    def test_ratio_recorded(self, fp, machine, tmp_path):
        cache, plan = self._cached_plan(fp, machine, tmp_path)
        rec = record_feedback(cache, plan, plan.predicted_s * 1.5)
        assert rec.ratio == pytest.approx(1.5)
        assert not rec.demoted
        assert cache.entry(plan.key).feedback == [pytest.approx(1.5)]

    def test_accurate_predictions_never_demote(self, fp, machine, tmp_path):
        cache, plan = self._cached_plan(fp, machine, tmp_path)
        for _ in range(8):
            rec = record_feedback(cache, plan, plan.predicted_s * 1.02)
        assert not rec.demoted
        assert cache.get(plan.key) is not None

    def test_persistent_drift_demotes(self, fp, machine, tmp_path):
        cache, plan = self._cached_plan(fp, machine, tmp_path)
        for _ in range(3):
            rec = record_feedback(cache, plan, plan.predicted_s * 10.0)
        assert rec.demoted
        assert cache.get(plan.key) is None  # demoted entries read as misses

    def test_single_outlier_does_not_demote(self, fp, machine, tmp_path):
        cache, plan = self._cached_plan(fp, machine, tmp_path)
        rec = record_feedback(cache, plan, plan.predicted_s * 10.0)
        assert not rec.demoted

    def test_works_without_cache(self, fp, machine):
        plan = plan_sort(fp, machine, dry_runs=False, seed=0)
        rec = record_feedback(None, plan, plan.predicted_s * 2.0)
        assert rec.ratio == pytest.approx(2.0)


# ------------------------------------------------------------------- autosort


def _autosort_program(comm, n, seed, cache_path):
    cache = PlanCache(cache_path) if cache_path else None
    rng = np.random.default_rng(seed + comm.rank)
    local = rng.integers(0, 1 << 32, n, dtype=np.uint64)
    res = autosort(comm, local, cache=cache, seed=0)
    return res, local


class TestAutosort:
    def test_output_globally_sorted(self, machine):
        out = run_spmd(4, _autosort_program, 1500, 20, None,
                       machine=machine, ranks_per_node=4)
        parts = [r.output for r, _ in out]
        merged = np.concatenate(parts)
        assert np.all(merged[:-1] <= merged[1:])
        original = np.concatenate([loc for _, loc in out])
        assert np.array_equal(np.sort(original), merged)
        assert sum(p.size for p in parts) == 4 * 1500

    def test_warm_cache_skips_planning(self, machine, tmp_path):
        path = str(tmp_path / "cache.json")
        kwargs = dict(machine=machine, ranks_per_node=4)
        before = dry_run_count()
        out1 = run_spmd(4, _autosort_program, 1500, 30, path, **kwargs)
        planned = dry_run_count() - before
        assert planned > 0  # cold cache: the planner dry-ran candidates
        assert not out1[0][0].cache_hit
        before = dry_run_count()
        out2 = run_spmd(4, _autosort_program, 1500, 30, path, **kwargs)
        assert dry_run_count() == before  # warm cache: ZERO dry runs
        assert out2[0][0].cache_hit
        assert out2[0][0].plan == out1[0][0].plan

    def test_all_ranks_agree_on_plan(self, machine):
        out = run_spmd(4, _autosort_program, 1000, 40, None,
                       machine=machine, ranks_per_node=4)
        ids = {r.plan.plan_id for r, _ in out}
        assert len(ids) == 1

    def test_feedback_returned(self, machine):
        out = run_spmd(4, _autosort_program, 1000, 50, None,
                       machine=machine, ranks_per_node=4)
        rec = out[0][0].feedback
        assert rec is not None and rec.ratio > 0

    def test_trace_metadata_stamped(self, machine, tmp_path):
        trial = run_sort_trial(
            4, 800, plan="auto", machine=machine, ranks_per_node=4,
            trace_path=tmp_path / "trace.json",
        )
        data = json.loads((tmp_path / "trace.json").read_text())
        meta = data["otherData"]
        assert meta["plan_id"] == trial.extra["plan_id"]
        assert meta["plan_algo"] == trial.extra["plan_algo"]
        from repro.trace.export import metadata_from_chrome

        assert metadata_from_chrome(data)["plan_id"] == trial.extra["plan_id"]


class TestTunedBeatsDefault:
    """Acceptance: the tuned plan's virtual makespan never loses to the
    paper-default ``SortConfig()`` on these fingerprints (two distinct
    workload/machine pairs).  ``benchmarks/bench_autotune.py`` sweeps the
    same comparison at larger scale."""

    @pytest.mark.parametrize(
        "machine,p,rpn,dist",
        [
            (abstract_cluster(2, cores_per_node=8), 8, 8, "zipf_u64"),
            (supermuc_phase2(nodes=4), 16, 4, "uniform_u64"),
        ],
        ids=["abstract2n-zipf", "supermuc4n-uniform"],
    )
    def test_tuned_not_worse(self, machine, p, rpn, dist):
        default = run_sort_trial(
            p, 2000, algo="dash", dist=dist, machine=machine, ranks_per_node=rpn
        )
        tuned = run_sort_trial(
            p, 2000, dist=dist, machine=machine, ranks_per_node=rpn, plan="auto"
        )
        assert tuned.total <= default.total
        assert tuned.extra["plan_id"]


# ------------------------------------------------------------------------ CLI


class TestCli:
    def test_recommend(self, capsys):
        rc = tune_main([
            "recommend", "--preset", "abstract", "--nodes", "2",
            "-p", "4", "-n", "1024", "--no-dry-runs",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "plan " in out and "algo:" in out

    def test_explain_lists_candidates(self, capsys):
        rc = tune_main([
            "explain", "--preset", "abstract", "--nodes", "2",
            "-p", "4", "-n", "1024", "--no-dry-runs",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "dash/paper-default" in out and "candidate" in out

    def test_recommend_deterministic(self, capsys):
        args = ["recommend", "--preset", "abstract", "--nodes", "2",
                "-p", "4", "-n", "1024", "--seed", "3"]
        tune_main(args)
        first = capsys.readouterr().out
        tune_main(args)
        second = capsys.readouterr().out
        assert first == second

    def test_store_and_cache_ls_clear(self, capsys, tmp_path):
        cache = str(tmp_path / "plans.json")
        rc = tune_main([
            "recommend", "--preset", "abstract", "--nodes", "2", "-p", "4",
            "-n", "1024", "--no-dry-runs", "--store", "--cache", cache,
        ])
        assert rc == 0
        capsys.readouterr()
        assert tune_main(["cache", "ls", "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "(1 entries)" in out
        assert tune_main(["cache", "clear", "--cache", cache]) == 0
        capsys.readouterr()
        tune_main(["cache", "ls", "--cache", cache])
        assert "(0 entries)" in capsys.readouterr().out

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            tune_main(["recommend", "--preset", "warehouse"])


# --------------------------------------------------------------- config serde


class TestConfigSerde:
    def test_splitter_roundtrip_all_fields(self):
        cfg = SplitterConfig(
            initial_guess="sample", sample_factor=3, cross_probe=True, max_rounds=77
        )
        assert SplitterConfig.from_dict(cfg.to_dict()) == cfg

    def test_sort_config_roundtrip_all_fields(self):
        cfg = SortConfig(
            eps=0.25,
            merge_strategy="tournament",
            splitter=SplitterConfig(initial_guess="sample", cross_probe=True),
            uniquify=True,
            overlap_exchange=True,
            trace=True,
            resilient=False,
            max_recovery_attempts=3,
        )
        assert SortConfig.from_dict(cfg.to_dict()) == cfg

    def test_defaults_roundtrip(self):
        assert SortConfig.from_dict(SortConfig().to_dict()) == SortConfig()
        assert SplitterConfig.from_dict(SplitterConfig().to_dict()) == SplitterConfig()

    def test_roundtrip_is_json_safe(self):
        cfg = SortConfig(merge_strategy="binary_tree")
        assert SortConfig.from_dict(json.loads(json.dumps(cfg.to_dict()))) == cfg

    def test_unknown_sort_field_rejected(self):
        data = SortConfig().to_dict()
        data["warp_drive"] = True
        with pytest.raises(ValueError, match="warp_drive"):
            SortConfig.from_dict(data)

    def test_unknown_splitter_field_rejected(self):
        data = SplitterConfig().to_dict()
        data["telepathy"] = 1
        with pytest.raises(ValueError, match="telepathy"):
            SplitterConfig.from_dict(data)

    def test_nested_splitter_validated(self):
        data = SortConfig().to_dict()
        data["splitter"]["bogus"] = 0
        with pytest.raises(ValueError, match="bogus"):
            SortConfig.from_dict(data)

    def test_invalid_values_still_rejected(self):
        data = SortConfig().to_dict()
        data["merge_strategy"] = "quantum"
        with pytest.raises(ValueError, match="merge_strategy"):
            SortConfig.from_dict(data)
