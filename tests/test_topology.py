"""Unit tests for rank placement and locality levels."""

import numpy as np
import pytest

from repro.machine import Level, Placement, make_placement, supermuc_phase2, abstract_cluster


@pytest.fixture
def smuc():
    return supermuc_phase2(nodes=4)


class TestPlacementCoordinates:
    def test_block_by_node(self, smuc):
        pl = Placement(smuc, nranks=56, ranks_per_node=28)
        assert pl.node_of(0) == 0
        assert pl.node_of(27) == 0
        assert pl.node_of(28) == 1
        assert pl.local_index(30) == 2

    def test_numa_fill_order(self, smuc):
        pl = Placement(smuc, nranks=28, ranks_per_node=28)
        # 28 ranks over 4 domains: 7 per domain
        assert pl.numa_of(0) == 0
        assert pl.numa_of(6) == 0
        assert pl.numa_of(7) == 1
        assert pl.numa_of(27) == 3

    def test_numa_ids_globally_unique(self, smuc):
        pl = Placement(smuc, nranks=56, ranks_per_node=28)
        assert pl.numa_of(28) == 4  # first domain of node 1

    def test_socket_of(self, smuc):
        pl = Placement(smuc, nranks=28, ranks_per_node=28)
        assert pl.socket_of(0) == 0
        assert pl.socket_of(14) == 1

    def test_rank_out_of_range(self, smuc):
        pl = Placement(smuc, nranks=8, ranks_per_node=8)
        with pytest.raises(IndexError):
            pl.node_of(8)

    def test_too_many_ranks_rejected(self, smuc):
        with pytest.raises(ValueError):
            Placement(smuc, nranks=smuc.nodes * 28 + 1, ranks_per_node=28)


class TestLevels:
    def test_self_level(self, smuc):
        pl = Placement(smuc, nranks=8, ranks_per_node=4)
        assert pl.level(3, 3) == Level.SELF

    def test_network_level_across_nodes(self, smuc):
        pl = Placement(smuc, nranks=56, ranks_per_node=28)
        assert pl.level(0, 28) == Level.NETWORK

    def test_numa_level_within_domain(self, smuc):
        pl = Placement(smuc, nranks=28, ranks_per_node=28)
        assert pl.level(0, 1) == Level.NUMA

    def test_socket_level_across_domains_same_socket(self, smuc):
        pl = Placement(smuc, nranks=28, ranks_per_node=28)
        assert pl.level(0, 7) == Level.SOCKET

    def test_node_level_across_sockets(self, smuc):
        pl = Placement(smuc, nranks=28, ranks_per_node=28)
        assert pl.level(0, 20) == Level.NODE

    def test_level_symmetry(self, smuc):
        pl = Placement(smuc, nranks=56, ranks_per_node=28)
        for a, b in [(0, 1), (0, 7), (0, 20), (0, 28), (5, 45)]:
            assert pl.level(a, b) == pl.level(b, a)

    def test_span_level(self, smuc):
        pl = Placement(smuc, nranks=56, ranks_per_node=28)
        assert pl.span_level([3]) == Level.SELF
        assert pl.span_level([0, 1, 2]) == Level.NUMA
        assert pl.span_level([0, 7]) == Level.SOCKET
        assert pl.span_level([0, 20]) == Level.NODE
        assert pl.span_level([0, 28]) == Level.NETWORK

    def test_span_level_empty_raises(self, smuc):
        pl = Placement(smuc, nranks=8, ranks_per_node=8)
        with pytest.raises(ValueError):
            pl.span_level([])

    def test_level_matrix_matches_pairwise(self, smuc):
        pl = Placement(smuc, nranks=56, ranks_per_node=28)
        ranks = [0, 3, 7, 20, 28, 55]
        mat = pl.level_matrix(ranks)
        for i, a in enumerate(ranks):
            for j, b in enumerate(ranks):
                assert mat[i, j] == int(pl.level(a, b)), (a, b)

    def test_nodes_used(self, smuc):
        pl = Placement(smuc, nranks=56, ranks_per_node=28)
        assert pl.nodes_used() == 2
        assert pl.nodes_used([0, 1]) == 1
        assert pl.nodes_used([0, 28]) == 2


class TestMakePlacement:
    def test_default_one_rank_per_core(self, smuc):
        pl = make_placement(smuc, 28)
        assert pl.ranks_per_node == 28

    def test_widens_when_machine_too_small(self):
        m = abstract_cluster(2, cores_per_node=4)
        pl = make_placement(m, 16)
        assert pl.ranks_per_node == 8  # oversubscribed to fit

    def test_explicit_ranks_per_node(self, smuc):
        pl = make_placement(smuc, 32, ranks_per_node=16)
        assert pl.node_of(16) == 1
