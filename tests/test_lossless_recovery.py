"""Lossless recovery: buddy checkpointing, spare substitution, breakers.

Exercises the pool-based recovery path of :mod:`repro.core.resilient`
(``SortConfig(checkpoint=True)`` / ``Runtime(spares=k)``): crashed ranks
are replaced by warm spares, their partitions restored from buddy
replicas, and the sort resumes from the last checkpointed phase — the
no-data-loss contract the chaos harness verifies at scale.  Also pins
the degradation machinery (phi-accrual adaptive deadlines, per-link
circuit breakers) to typed errors and exact virtual-time replay.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SortConfig
from repro.core.histsort import histogram_sort
from repro.core.resilient import ResilientSortResult
from repro.faults import CrashEvent, FaultPlan, FaultSpec
from repro.faults.chaos import ChaosCase, run_case
from repro.metrics import MetricsRegistry, collect_runtime, to_prometheus
from repro.mpi import (
    ADAPTIVE_POLICY,
    CircuitOpenError,
    MessageTimeoutError,
    Runtime,
    reliable_recv,
    reliable_send,
)

WALL = 120.0


def _input(rank: int, n: int, seed: int = 177) -> np.ndarray:
    rng = np.random.default_rng(seed + rank)
    return rng.integers(0, 1 << 62, n, dtype=np.int64)


def _sorter(comm, n, cfg):
    return histogram_sort(comm, _input(comm.rank, n), cfg)


def _run(p, plan, *, spares=0, checkpoint=True, n=64, check=False):
    cfg = SortConfig(resilient=True, checkpoint=checkpoint)
    rt = Runtime(p, spares=spares, faults=plan, check=check)
    results = rt.run(_sorter, args=(n, cfg), timeout=WALL)
    live = [r for r in results if isinstance(r, ResilientSortResult)]
    return rt, live


def _expect(ranks, n):
    parts = [_input(r, n) for r in ranks] or [np.empty(0, np.int64)]
    return np.sort(np.concatenate(parts))


def _crash_plan(seed, size, *crashes, drop=0.05):
    return FaultPlan(
        FaultSpec(drop_rate=drop, dup_rate=drop / 2,
                  crashes=tuple(CrashEvent(rank=r, at_op=op)
                                for r, op in crashes)),
        seed=seed, size=size,
    )


def test_spare_substitution_keeps_rank_count_and_all_data():
    # two crashes, two spares, checkpointing on: p stays 4 and nothing
    # is lost — the tentpole acceptance case
    plan = _crash_plan(11, 6, (1, 40), (3, 55))
    rt, live = _run(4, plan, spares=2)
    assert sorted(rt.fault_stats.crashed) == [1, 3]
    assert len(live) == 4
    first = live[0]
    assert first.comm.size == 4  # p unchanged
    assert first.spares_used == 2
    assert first.lost == ()
    assert first.failed == (1, 3)
    got = np.sort(np.concatenate([r.output for r in live]))
    assert np.array_equal(got, _expect(range(4), 64))  # full multiset
    chain = np.concatenate(
        [r.output for r in sorted(live, key=lambda r: r.comm.rank)])
    assert np.all(chain[:-1] <= chain[1:])
    assert rt.fault_stats.spares_used == 2
    assert rt.fault_stats.checkpoints > 0
    assert rt.fault_stats.lost == 0


def test_shrink_fallback_salvages_when_spares_exhausted():
    # two crashes but only one spare: the second failure falls back to
    # shrink, yet buddy replicas keep the data (salvage) — lost stays ()
    plan = _crash_plan(11, 5, (1, 40), (3, 55))
    rt, live = _run(4, plan, spares=1)
    assert sorted(rt.fault_stats.crashed) == [1, 3]
    assert live, "no survivors"
    first = live[0]
    assert len(live) == first.comm.size < 4  # shrunk
    assert first.lost == ()
    got = np.sort(np.concatenate([r.output for r in live]))
    assert np.array_equal(got, _expect(range(4), 64))


def test_spares_without_checkpoint_report_lost_ranks():
    # substitution keeps p constant, but with no replicas the crashed
    # rank's partition is gone — and the result must say so
    plan = _crash_plan(7, 5, (2, 25))
    rt, live = _run(4, plan, spares=1, checkpoint=False)
    assert rt.fault_stats.crashed == [2]
    assert len(live) == 4
    first = live[0]
    assert first.comm.size == 4
    assert first.spares_used == 1
    assert first.lost == (2,)
    got = np.sort(np.concatenate([r.output for r in live]))
    assert np.array_equal(got, _expect([0, 1, 3], 64))


def test_pooled_faultless_matches_legacy_output():
    # with no faults the lossless machinery must be output-invisible
    def outputs(**kw):
        rt, live = _run(4, None, **kw)
        assert len(live) == 4
        assert all(r.attempts == 1 and r.lost == () for r in live)
        return [r.output for r in sorted(live, key=lambda r: r.comm.rank)]

    legacy = outputs(spares=0, checkpoint=False)
    pooled = outputs(spares=2, checkpoint=True)
    assert all(np.array_equal(a, b) for a, b in zip(legacy, pooled))


def test_recovery_epoch_exact_replay():
    # a full lossless recovery (crash + restore + substitution) replays
    # bit-identically: same makespan, clocks, fault tally, outputs
    def once():
        plan = _crash_plan(23, 5, (1, 50), drop=0.15)
        rt, live = _run(4, plan, spares=1)
        outs = [r.output for r in sorted(live, key=lambda r: r.comm.rank)]
        return rt.elapsed(), np.array(rt.clocks), rt.fault_stats.summary(), outs

    t_a, clocks_a, stats_a, outs_a = once()
    t_b, clocks_b, stats_b, outs_b = once()
    assert t_a == t_b  # exact float equality, not approx
    assert np.array_equal(clocks_a, clocks_b)
    assert stats_a == stats_b
    assert all(np.array_equal(a, b) for a, b in zip(outs_a, outs_b))
    assert "recoveries=" in stats_a  # the recovery actually happened


def test_degraded_link_soak_trips_breaker_not_hang():
    # a link that eats every message: the adaptive policy's ladder must
    # end in typed errors and the breaker must open — never a hang (the
    # Runtime.run timeout is the backstop that would catch one)
    plan = FaultPlan(FaultSpec(drop_rate=1.0), seed=3, size=2)

    def prog(comm):
        if comm.rank == 0:
            for i in range(ADAPTIVE_POLICY.breaker_threshold + 2):
                try:
                    reliable_send(comm, i, 1, tag=7, policy=ADAPTIVE_POLICY)
                except CircuitOpenError:  # subclass — catch before parent
                    return "circuit-open"
                except MessageTimeoutError:
                    continue
                return "delivered?"
            return "no-trip"
        try:
            while True:
                reliable_recv(comm, 0, 7, timeout=0.5)
        except MessageTimeoutError:
            return "starved"

    rt = Runtime(2, faults=plan)
    results = rt.run(prog, timeout=WALL)
    assert results[0] == "circuit-open"
    assert results[1] == "starved"
    assert rt.fault_stats.breaker_trips >= 1
    # fail-fast: the open breaker refuses immediately, with no ladder
    assert rt.fault_stats.dropped <= ADAPTIVE_POLICY.breaker_threshold * (
        ADAPTIVE_POLICY.max_attempts + 1)


def test_control_traffic_separate_from_wire_bytes():
    # checkpoint replication and ARQ retransmissions are control-plane:
    # wire_bytes must not move when checkpointing turns on
    def snap(checkpoint):
        plan = FaultPlan(FaultSpec(drop_rate=0.1), seed=31, size=5)
        rt, live = _run(4, plan, spares=1, checkpoint=checkpoint)
        assert len(live) == 4
        return rt.stats.snapshot()

    off = snap(False)
    on = snap(True)
    assert "checkpoint" in on.control and "checkpoint" not in off.control
    ck_msgs, ck_bytes = on.control["checkpoint"]
    assert ck_msgs > 0 and ck_bytes > 0
    assert on.control.get("arq", (0, 0))[0] > 0  # retransmissions under drops
    assert on.wire_bytes == off.wire_bytes  # data plane unchanged
    assert on.total_control_bytes > off.total_control_bytes


def test_recovery_metrics_exported():
    plan = _crash_plan(11, 6, (1, 40), (3, 55))
    rt, live = _run(4, plan, spares=2)
    assert len(live) == 4
    reg = MetricsRegistry()
    collect_runtime(reg, rt, labels={"algo": "hist"})
    text = to_prometheus(reg)
    assert 'repro_control_bytes_total{algo="hist",kind="checkpoint"}' in text
    assert 'repro_fault_events_total{algo="hist",event="spares_used"} 2' in text
    assert 'repro_fault_events_total{algo="hist",event="recoveries"}' in text


def test_checkpoint_requires_resilient():
    with pytest.raises(ValueError, match="requires resilient"):
        SortConfig(checkpoint=True)


def test_chaos_oracle_accepts_lossless_case():
    out = run_case(ChaosCase(seed=11, size=4, drop_rate=0.1, crash_ranks=2,
                             n_per_rank=48, check=False, spares=2,
                             checkpoint=True),
                   wall_timeout=WALL)
    assert out.ok, f"{out.kind}: {out.detail}"
