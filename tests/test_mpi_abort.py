"""Abort semantics: a rank dying mid-operation must unwind its peers.

When any rank raises, the runtime aborts: every peer blocked in a p2p or
collective wait is hoisted out with :class:`Aborted` (the in-process
analogue of ``MPI_Abort``) and the driver raises :class:`SPMDError`
carrying only the *real* failure.  These tests pin that contract for the
three wait flavours — an ``alltoallv`` (payload collective), a
``barrier`` (pure rendezvous), and a blocking ``recv`` — with a wall
timeout so a regression shows up as a failure, not a hung test run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import SPMDError
from tests.conftest import spmd

WALL = 60.0  # generous wall-clock backstop: failure mode is a hang


class Boom(RuntimeError):
    pass


def _assert_only_rank_failed(excinfo, rank: int):
    err = excinfo.value
    assert isinstance(err, SPMDError)
    assert set(err.failures) == {rank}
    assert isinstance(err.failures[rank], Boom)


def test_peer_death_unblocks_alltoallv():
    def prog(comm):
        if comm.rank == 1:
            raise Boom("rank 1 dies before the exchange")
        chunks = [np.full(4, comm.rank, dtype=np.int64)
                  for _ in range(comm.size)]
        comm.alltoallv(chunks)  # spmd: ignore[DIV-COLLECTIVE]
        return "unreachable"

    with pytest.raises(SPMDError) as excinfo:
        spmd(4, prog, timeout=WALL)
    _assert_only_rank_failed(excinfo, 1)


def test_peer_death_unblocks_barrier():
    def prog(comm):
        if comm.rank == 2:
            raise Boom("rank 2 dies before the barrier")
        comm.barrier()  # spmd: ignore[DIV-COLLECTIVE]
        return "unreachable"

    with pytest.raises(SPMDError) as excinfo:
        spmd(4, prog, timeout=WALL)
    _assert_only_rank_failed(excinfo, 2)


def test_peer_death_unblocks_recv():
    def prog(comm):
        if comm.rank == 0:
            raise Boom("rank 0 dies instead of sending")
        if comm.rank == 1:
            comm.recv(source=0)  # would block forever without the abort
        return "unreachable"

    with pytest.raises(SPMDError) as excinfo:
        spmd(2, prog, timeout=WALL)
    _assert_only_rank_failed(excinfo, 0)


def test_death_mid_collective_sequence():
    # The failing rank has already completed one collective; peers are one
    # operation ahead when it dies, so the abort must reach ranks blocked
    # in a *later* collective than the one the victim last joined.
    def prog(comm):
        comm.barrier()
        if comm.rank == 3:
            raise Boom("rank 3 dies between collectives")
        comm.allreduce(comm.rank)  # spmd: ignore[DIV-COLLECTIVE]
        comm.barrier()  # spmd: ignore[DIV-COLLECTIVE]
        return "unreachable"

    with pytest.raises(SPMDError) as excinfo:
        spmd(4, prog, timeout=WALL)
    _assert_only_rank_failed(excinfo, 3)


def test_surviving_ranks_do_not_report_phantom_failures():
    # Aborted peers are secondary casualties: the error must name rank 0
    # only, and its per-rank summary must point at the real exception.
    def prog(comm):
        if comm.rank == 0:
            raise Boom("primary failure")
        comm.recv(source=0)

    with pytest.raises(SPMDError) as excinfo:
        spmd(3, prog, timeout=WALL)
    _assert_only_rank_failed(excinfo, 0)
    assert "rank 0: Boom: primary failure" in str(excinfo.value)
